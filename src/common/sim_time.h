// Virtual time for the storage simulator.
//
// All device service times, CPU charges, and application elapsed times are
// expressed as `Duration` (integer nanoseconds, signed 64-bit: enough for
// ±292 years, far beyond any tape mount). `TimePoint` is a duration since the
// simulation epoch. Integer representation keeps runs exactly reproducible.
#ifndef SLEDS_SRC_COMMON_SIM_TIME_H_
#define SLEDS_SRC_COMMON_SIM_TIME_H_

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

namespace sled {

class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(int64_t nanos) : nanos_(nanos) {}

  constexpr int64_t nanos() const { return nanos_; }
  constexpr double ToSeconds() const { return static_cast<double>(nanos_) * 1e-9; }
  constexpr double ToMillis() const { return static_cast<double>(nanos_) * 1e-6; }
  constexpr double ToMicros() const { return static_cast<double>(nanos_) * 1e-3; }

  constexpr bool IsZero() const { return nanos_ == 0; }

  constexpr Duration operator+(Duration other) const { return Duration(nanos_ + other.nanos_); }
  constexpr Duration operator-(Duration other) const { return Duration(nanos_ - other.nanos_); }
  constexpr Duration operator*(int64_t k) const { return Duration(nanos_ * k); }
  constexpr Duration operator/(int64_t k) const { return Duration(nanos_ / k); }
  constexpr Duration& operator+=(Duration other) {
    nanos_ += other.nanos_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    nanos_ -= other.nanos_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  // Human-readable rendering with an auto-selected unit ("1.250 ms").
  std::string ToString() const;

 private:
  int64_t nanos_ = 0;
};

constexpr Duration Nanoseconds(int64_t n) { return Duration(n); }
constexpr Duration Microseconds(int64_t n) { return Duration(n * 1000); }
constexpr Duration Milliseconds(int64_t n) { return Duration(n * 1000 * 1000); }
constexpr Duration Seconds(int64_t n) { return Duration(n * 1000 * 1000 * 1000); }

// Floating-point construction, rounding to the nearest nanosecond. Not
// constexpr because std::llround is not constexpr in C++20.
inline Duration SecondsF(double s) { return Duration(static_cast<int64_t>(std::llround(s * 1e9))); }
inline Duration MillisecondsF(double ms) {
  return Duration(static_cast<int64_t>(std::llround(ms * 1e6)));
}
inline Duration MicrosecondsF(double us) {
  return Duration(static_cast<int64_t>(std::llround(us * 1e3)));
}

// Time to move `bytes` bytes at `bytes_per_sec` (pure transfer, no latency).
inline Duration TransferTime(int64_t bytes, double bytes_per_sec) {
  return SecondsF(static_cast<double>(bytes) / bytes_per_sec);
}

class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(Duration since_epoch) : since_epoch_(since_epoch) {}

  constexpr Duration since_epoch() const { return since_epoch_; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(since_epoch_ + d); }
  constexpr Duration operator-(TimePoint other) const { return since_epoch_ - other.since_epoch_; }
  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  Duration since_epoch_;
};

// The simulation clock. Single-threaded: components advance it as they charge
// service or CPU time. Owned by the SimKernel; passed by reference downward.
class SimClock {
 public:
  SimClock() = default;
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  TimePoint Now() const { return now_; }
  void Advance(Duration d) { now_ = now_ + d; }

 private:
  TimePoint now_;
};

}  // namespace sled

#endif  // SLEDS_SRC_COMMON_SIM_TIME_H_
