// Tiny ASCII plotter so each bench binary can render the paper figure it
// reproduces directly in the terminal (alongside the machine-readable rows).
#ifndef SLEDS_SRC_COMMON_ASCII_PLOT_H_
#define SLEDS_SRC_COMMON_ASCII_PLOT_H_

#include <string>
#include <vector>

namespace sled {

struct PlotSeries {
  std::string name;
  char glyph = '+';
  std::vector<double> xs;
  std::vector<double> ys;
};

struct PlotOptions {
  int width = 72;    // interior columns
  int height = 20;   // interior rows
  std::string title;
  std::string x_label;
  std::string y_label;
  bool y_from_zero = true;
};

// Render a scatter plot of the series onto a character grid with axes and a
// legend. Overlapping points from different series show the later glyph.
std::string RenderPlot(const std::vector<PlotSeries>& series, const PlotOptions& options);

}  // namespace sled

#endif  // SLEDS_SRC_COMMON_ASCII_PLOT_H_
