// Deterministic fault injection for storage devices.
//
// A FaultPlan sits in front of a StorageDevice's Access() and decides, per
// operation, whether the op fails and how a successful op's service time is
// distorted. Everything is seeded and draws from the plan's own Rng in op
// order, so a fixed (seed, op sequence) pair always injects the same faults —
// error-path behavior is as replayable as the happy path.
//
// Fault vocabulary (ISSUE: per-op failure probability, transient vs
// persistent media errors, latency spikes, server down/slow windows):
//
//   * probabilistic transient faults — an op fails with `kIo` this attempt;
//     retrying (controller-level or kernel-level) may succeed.
//   * persistent media errors — a probabilistic fault can additionally mark
//     the touched byte range bad; every later op overlapping it fails until
//     the range is repaired (ClearBadRanges). Scripted tests install ranges
//     directly with AddBadRange.
//   * scripted faults — FailNextReads/FailNextWrites force the next N ops to
//     fail regardless of probabilities; the deterministic backbone of the
//     error-path tests.
//   * latency spikes — a successful op's service time is multiplied by
//     spike_factor with probability spike_prob (tail-latency events, cf. the
//     SSD read-variability studies in PAPERS.md).
//   * down/slow windows — clock intervals during which every op fails with
//     `kUnavailable` (down) or runs `factor` times slower (slow). This is the
//     paper's NFS-server-down story: while a window is open the device also
//     reports unhealthy through Health(), so SLEDs balloon their estimates.
//   * GC windows — clock intervals during which a fraction `duty` of ops eat
//     a fixed garbage-collection stall on top of their service time (flash
//     write cliffs, cf. the SSD read-variability study in PAPERS.md). Unlike
//     slow windows this is *tail* distortion: the mean moves by duty*stall
//     while the p99 moves by the full stall, which is what distribution-
//     valued SLEDs exist to express. GC windows never fail ops.
//
// Failures are fail-fast: a faulting op returns its error without touching
// the device model, costing zero simulated device time and zero device-RNG
// draws. The simulated cost of failure handling comes from retry attempts
// and kernel backoff, which keeps time accounting attributable (and keeps a
// masked transient fault byte-identical to no fault at all).
#ifndef SLEDS_SRC_DEVICE_FAULT_H_
#define SLEDS_SRC_DEVICE_FAULT_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"

namespace sled {

// Health summary a device reports upward for SLED construction: when a down
// window is open the level is unavailable; a slow window inflates latency
// and deflates bandwidth by latency_factor; a GC window adds a stall of
// gc_stall_s seconds to a gc_duty fraction of ops (tail inflation — the
// kernel folds it into the SLED quantiles, not just the mean).
struct DeviceHealth {
  bool unavailable = false;
  double latency_factor = 1.0;
  double gc_stall_s = 0.0;
  double gc_duty = 0.0;

  bool degraded() const {
    return unavailable || latency_factor != 1.0 || gc_duty > 0.0;
  }
};

// Conservative composition of two health reports: unavailable if either is,
// the worse slowdown, the worse GC stall, and the combined (sum-capped) GC
// duty. Used wherever one SLED level summarizes several fault sources — a
// plan with overlapping windows, a tape library, a replica set.
inline DeviceHealth CombineHealth(const DeviceHealth& a, const DeviceHealth& b) {
  DeviceHealth h;
  h.unavailable = a.unavailable || b.unavailable;
  h.latency_factor = a.latency_factor > b.latency_factor ? a.latency_factor : b.latency_factor;
  h.gc_stall_s = a.gc_stall_s > b.gc_stall_s ? a.gc_stall_s : b.gc_stall_s;
  h.gc_duty = a.gc_duty + b.gc_duty;
  if (h.gc_duty > 1.0) {
    h.gc_duty = 1.0;
  }
  return h;
}

struct FaultPlanConfig {
  uint64_t seed = 1;
  // Per-op probability that a read/write fails this attempt.
  double read_fault_prob = 0.0;
  double write_fault_prob = 0.0;
  // Given a probabilistic fault, probability it is persistent: the op's byte
  // range is marked bad and keeps failing until repaired.
  double persistent_prob = 0.0;
  // Transient probabilistic faults are retried inside the device up to this
  // many times before one escapes to the caller — the SCSI-style controller
  // retry budget. Escape probability per op is read_fault_prob^(retries+1),
  // so the environment smoke plan (see FromEnv) exercises the fault rolls on
  // every op while letting the tier-1 suite pass unchanged. Scripted faults,
  // bad ranges, and down windows always escape.
  int controller_retries = 0;
  // Latency spikes on successful ops.
  double spike_prob = 0.0;
  double spike_factor = 8.0;
};

struct FaultStats {
  int64_t faults_injected = 0;   // ops that failed (escaped to the caller)
  int64_t transient_masked = 0;  // transient rolls hidden by controller retries
  int64_t persistent_marked = 0; // bad ranges installed by probabilistic faults
  int64_t unavailable_hits = 0;  // ops rejected by a down window
  int64_t spikes = 0;            // successful ops that paid a latency spike
  int64_t gc_stalls = 0;         // successful ops that caught a GC pause
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig config);

  // Builds the environment-default smoke plan for `device_name` when
  // $SLEDS_FAULT_SEED is set and nonzero: transient-only faults (probability
  // $SLEDS_FAULT_P, default 0.002) masked by 3 controller retries, seeded per
  // device from the env seed and the device name. Returns nullptr when the
  // variable is unset or zero.
  static std::shared_ptr<FaultPlan> FromEnv(std::string_view device_name);

  // Windows compare against this clock; without one, window checks are
  // inert. (The kernel's devices get the SimClock at mount.)
  void AttachClock(const SimClock* clock) { clock_ = clock; }

  // ---- scripting (tests / experiments) ----
  void AddBadRange(int64_t offset, int64_t length);
  void ClearBadRanges() { bad_ranges_.clear(); }
  void FailNextReads(int n) { forced_read_failures_ += n; }
  void FailNextWrites(int n) { forced_write_failures_ += n; }
  void AddDownWindow(TimePoint start, TimePoint end);
  void AddSlowWindow(TimePoint start, TimePoint end, double factor);
  // While open, each op independently stalls for `stall` with probability
  // `duty` (a GC pause caught mid-flight). Ops never fail.
  void AddGcWindow(TimePoint start, TimePoint end, Duration stall, double duty);

  // Consulted by StorageDevice::Read/Write *before* the access. kOk means
  // proceed; any other code fails the op fail-fast (no device time, no
  // device-model state change).
  Err Judge(bool write, int64_t offset, int64_t nbytes);

  // Applied to the service time of a successful access (spikes, slow
  // windows). Never shrinks t.
  Duration AdjustServiceTime(Duration t);

  DeviceHealth Health() const;

  const FaultStats& stats() const { return stats_; }
  const FaultPlanConfig& config() const { return config_; }

 private:
  struct Window {
    enum class Kind { kDown, kSlow, kGc };
    TimePoint start;
    TimePoint end;
    Kind kind = Kind::kDown;
    double slow_factor = 0.0;   // kSlow: service-time multiplier
    Duration gc_stall;          // kGc: stall added to a hit op
    double gc_duty = 0.0;       // kGc: fraction of ops that eat the stall
  };

  bool InBadRange(int64_t offset, int64_t nbytes) const;
  // Is `w` open at the attached clock's current time? Always false without a
  // clock (window checks are inert, per AttachClock).
  bool WindowActive(const Window& w) const;

  FaultPlanConfig config_;
  Rng rng_;
  const SimClock* clock_ = nullptr;
  std::vector<std::pair<int64_t, int64_t>> bad_ranges_;  // [offset, end)
  std::vector<Window> windows_;
  int forced_read_failures_ = 0;
  int forced_write_failures_ = 0;
  FaultStats stats_;
};

}  // namespace sled

#endif  // SLEDS_SRC_DEVICE_FAULT_H_
