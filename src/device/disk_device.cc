#include "src/device/disk_device.h"

#include <cmath>

#include "src/common/log.h"

namespace sled {

DiskDevice::DiskDevice(DiskDeviceConfig config, std::string name)
    : StorageDevice(std::move(name)), config_(config), rng_(config.seed) {
  SLED_CHECK(config_.capacity_bytes > 0, "disk capacity must be positive");
  SLED_CHECK(config_.num_zones >= 1, "disk needs at least one zone");
  SLED_CHECK(config_.min_seek <= config_.max_seek, "min_seek > max_seek");
}

double DiskDevice::BandwidthAt(int64_t offset) const {
  // Zone index grows toward the inner (slower) tracks. Divide the offset by
  // the zone width instead of multiplying by num_zones: `offset * num_zones`
  // overflows int64 for multi-TB capacities with many zones.
  const int64_t zone_bytes = config_.capacity_bytes / config_.num_zones;
  const int zone = static_cast<int>(offset / zone_bytes);
  const int clamped = zone >= config_.num_zones ? config_.num_zones - 1 : zone;
  if (config_.num_zones == 1) {
    return (config_.outer_bandwidth_bps + config_.inner_bandwidth_bps) / 2.0;
  }
  const double frac = static_cast<double>(clamped) / static_cast<double>(config_.num_zones - 1);
  return config_.outer_bandwidth_bps +
         frac * (config_.inner_bandwidth_bps - config_.outer_bandwidth_bps);
}

Duration DiskDevice::SeekTime(int64_t from, int64_t to) const {
  const double dist = std::abs(static_cast<double>(to - from)) /
                      static_cast<double>(config_.capacity_bytes);
  if (dist == 0.0) {
    return Duration();
  }
  const double min_s = config_.min_seek.ToSeconds();
  const double max_s = config_.max_seek.ToSeconds();
  return SecondsF(min_s + (max_s - min_s) * std::sqrt(dist));
}

DeviceCharacteristics DiskDevice::Nominal() const {
  // Average seek over uniformly random stroke fraction d: E[sqrt(d)] = 2/3.
  const double min_s = config_.min_seek.ToSeconds();
  const double max_s = config_.max_seek.ToSeconds();
  const Duration avg_seek = SecondsF(min_s + (max_s - min_s) * (2.0 / 3.0));
  const Duration half_rotation = RotationPeriod() / 2;
  const double avg_bw =
      (config_.outer_bandwidth_bps + config_.inner_bandwidth_bps) / 2.0;
  // Positioning quantiles, first-order: seek over a uniform stroke fraction d
  // has quantile min + (max-min)*sqrt(p), the rotational delay has quantile
  // p * period; summing per-component quantiles is the standard comonotonic
  // upper-bound approximation for the combined distribution.
  const double period_s = RotationPeriod().ToSeconds();
  auto q = [&](double p) {
    return min_s + (max_s - min_s) * std::sqrt(p) + p * period_s;
  };
  return {avg_seek + half_rotation, avg_bw, {q(0.50), q(0.90), q(0.99)}};
}

Duration DiskDevice::Estimate(int64_t offset, int64_t nbytes) const {
  // Expectation of Access(): the same per-request overhead and transfer, plus
  // the mean of the random rotational delay (half a rotation) on reposition.
  Duration t = config_.per_request_overhead + TransferTime(nbytes, BandwidthAt(offset));
  if (!IsSequential(offset)) {
    t += SeekTime(head_position_, offset) + RotationPeriod() / 2;
  }
  return t;
}

Duration DiskDevice::Access(int64_t offset, int64_t nbytes, bool /*writing*/) {
  Duration t = config_.per_request_overhead + TransferTime(nbytes, BandwidthAt(offset));
  if (!IsSequential(offset)) {
    // Rotational phase is effectively random on a reposition.
    const Duration rotation =
        SecondsF(rng_.UniformDouble() * RotationPeriod().ToSeconds());
    t += SeekTime(head_position_, offset) + rotation;
    CountReposition();
  }
  head_position_ = offset + nbytes;
  return t;
}

}  // namespace sled
