#include "src/device/fault.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "src/common/log.h"

namespace sled {
namespace {

// FNV-1a, so each device derives an independent stream from one env seed.
uint64_t HashName(std::string_view name) {
  uint64_t h = 1469598103934665603ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

FaultPlan::FaultPlan(FaultPlanConfig config) : config_(config), rng_(config.seed) {
  SLED_CHECK(config_.read_fault_prob >= 0.0 && config_.read_fault_prob <= 1.0 &&
                 config_.write_fault_prob >= 0.0 && config_.write_fault_prob <= 1.0 &&
                 config_.persistent_prob >= 0.0 && config_.persistent_prob <= 1.0 &&
                 config_.spike_prob >= 0.0 && config_.spike_prob <= 1.0,
             "fault probabilities must be in [0, 1]");
  SLED_CHECK(config_.controller_retries >= 0 && config_.spike_factor >= 1.0,
             "bad fault plan config");
}

std::shared_ptr<FaultPlan> FaultPlan::FromEnv(std::string_view device_name) {
  // Env resolution cached once per process (thread-safe magic static):
  // devices are constructed on shard worker threads, and every shard must see
  // the same plan parameters regardless of construction order.
  struct EnvPlan {
    uint64_t seed = 0;
    double p = 0.002;
  };
  static const EnvPlan env_plan = [] {
    EnvPlan plan;
    if (const char* env = std::getenv("SLEDS_FAULT_SEED")) {
      plan.seed = std::strtoull(env, nullptr, 10);
    }
    if (const char* pe = std::getenv("SLEDS_FAULT_P"); pe != nullptr) {
      plan.p = std::clamp(std::strtod(pe, nullptr), 0.0, 1.0);
    }
    return plan;
  }();
  if (env_plan.seed == 0) {
    return nullptr;  // unset or "0" means off
  }
  FaultPlanConfig fc;
  fc.seed = env_plan.seed * 1099511628211ull ^ HashName(device_name);
  fc.read_fault_prob = env_plan.p;
  fc.write_fault_prob = env_plan.p;
  // Transient-only, controller-masked: the fault rolls run hot on every op
  // but an escape needs (retries+1) consecutive fault rolls, so the tier-1
  // suite passes unchanged under the smoke plan.
  fc.persistent_prob = 0.0;
  fc.controller_retries = 3;
  return std::make_shared<FaultPlan>(fc);
}

void FaultPlan::AddBadRange(int64_t offset, int64_t length) {
  SLED_CHECK(offset >= 0 && length > 0, "bad media range must be non-empty");
  bad_ranges_.emplace_back(offset, offset + length);
}

void FaultPlan::AddDownWindow(TimePoint start, TimePoint end) {
  windows_.push_back(Window{start, end, Window::Kind::kDown});
}

void FaultPlan::AddSlowWindow(TimePoint start, TimePoint end, double factor) {
  SLED_CHECK(factor >= 1.0, "slow window factor must be >= 1");
  windows_.push_back(Window{start, end, Window::Kind::kSlow, factor});
}

void FaultPlan::AddGcWindow(TimePoint start, TimePoint end, Duration stall, double duty) {
  SLED_CHECK(stall.nanos() >= 0 && duty >= 0.0 && duty <= 1.0,
             "GC window needs a non-negative stall and duty in [0, 1]");
  Window w{start, end, Window::Kind::kGc};
  w.gc_stall = stall;
  w.gc_duty = duty;
  windows_.push_back(w);
}

bool FaultPlan::InBadRange(int64_t offset, int64_t nbytes) const {
  const int64_t end = offset + nbytes;
  for (const auto& [lo, hi] : bad_ranges_) {
    if (offset < hi && lo < end) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::WindowActive(const Window& w) const {
  if (clock_ == nullptr) {
    return false;
  }
  const TimePoint now = clock_->Now();
  return !(now < w.start) && now < w.end;
}

Err FaultPlan::Judge(bool write, int64_t offset, int64_t nbytes) {
  // Down window: the whole device is unreachable; no media rolls happen.
  // Any open down window counts, even when a slow/GC window overlaps it.
  // (Slow and GC windows distort time, not success — they judge kOk.)
  for (const Window& w : windows_) {
    if (w.kind == Window::Kind::kDown && WindowActive(w)) {
      ++stats_.unavailable_hits;
      ++stats_.faults_injected;
      return Err::kUnavailable;
    }
  }
  // Scripted failures escape unconditionally.
  int& forced = write ? forced_write_failures_ : forced_read_failures_;
  if (forced > 0) {
    --forced;
    ++stats_.faults_injected;
    return Err::kIo;
  }
  // Persistent media errors: already-marked ranges keep failing.
  if (InBadRange(offset, nbytes)) {
    ++stats_.faults_injected;
    return Err::kIo;
  }
  // Probabilistic faults, with the controller retry budget applied inside the
  // device: only (retries+1) consecutive fault rolls escape.
  const double p = write ? config_.write_fault_prob : config_.read_fault_prob;
  if (p > 0.0) {
    for (int attempt = 0; attempt <= config_.controller_retries; ++attempt) {
      if (!rng_.Bernoulli(p)) {
        if (attempt > 0) {
          stats_.transient_masked += attempt;
        }
        return Err::kOk;
      }
      if (config_.persistent_prob > 0.0 && rng_.Bernoulli(config_.persistent_prob)) {
        AddBadRange(offset, nbytes);
        ++stats_.persistent_marked;
        ++stats_.faults_injected;
        return Err::kIo;  // persistent: no point in controller retries
      }
    }
    stats_.transient_masked += config_.controller_retries;
    ++stats_.faults_injected;
    return Err::kIo;
  }
  return Err::kOk;
}

Duration FaultPlan::AdjustServiceTime(Duration t) {
  // All open windows apply together: the worst slow factor scales the
  // service time once, and every open GC window rolls its own stall (stalls
  // stack — two collectors can both catch the same op). A single open window
  // behaves exactly as before.
  double slow = 1.0;
  Duration gc_stall;
  for (const Window& w : windows_) {
    if (!WindowActive(w)) {
      continue;
    }
    if (w.kind == Window::Kind::kSlow && w.slow_factor > slow) {
      slow = w.slow_factor;
    } else if (w.kind == Window::Kind::kGc && w.gc_duty > 0.0 && rng_.Bernoulli(w.gc_duty)) {
      ++stats_.gc_stalls;
      gc_stall += w.gc_stall;
    }
  }
  if (slow > 1.0) {
    t = SecondsF(t.ToSeconds() * slow);
  }
  t += gc_stall;
  if (config_.spike_prob > 0.0 && rng_.Bernoulli(config_.spike_prob)) {
    ++stats_.spikes;
    t = SecondsF(t.ToSeconds() * config_.spike_factor);
  }
  return t;
}

DeviceHealth FaultPlan::Health() const {
  // Compose every open window, not just the first: a slow window overlapping
  // a GC window must report both the slowdown and the tail risk, and a down
  // window anywhere makes the device unavailable.
  DeviceHealth h;
  for (const Window& w : windows_) {
    if (!WindowActive(w)) {
      continue;
    }
    DeviceHealth part;
    switch (w.kind) {
      case Window::Kind::kDown:
        part.unavailable = true;
        break;
      case Window::Kind::kSlow:
        part.latency_factor = w.slow_factor;
        break;
      case Window::Kind::kGc:
        part.gc_stall_s = w.gc_stall.ToSeconds();
        part.gc_duty = w.gc_duty;
        break;
    }
    h = CombineHealth(h, part);
  }
  return h;
}

}  // namespace sled
