#include "src/device/device.h"

#include "src/common/log.h"
#include "src/obs/observer.h"

namespace sled {

void StorageDevice::AttachObserver(Observer* obs) {
  obs_ = obs;
  if (faults_ != nullptr && obs_ != nullptr) {
    faults_->AttachClock(obs_->clock());
  }
}

void StorageDevice::InjectFaults(std::shared_ptr<FaultPlan> plan) {
  faults_ = std::move(plan);
  if (faults_ != nullptr && obs_ != nullptr) {
    faults_->AttachClock(obs_->clock());
  }
}

Result<Duration> StorageDevice::Read(int64_t offset, int64_t nbytes) {
  SLED_CHECK(offset >= 0 && nbytes > 0 && offset + nbytes <= capacity_bytes(),
             "%s: read out of range: offset=%lld nbytes=%lld cap=%lld", name_.c_str(),
             static_cast<long long>(offset), static_cast<long long>(nbytes),
             static_cast<long long>(capacity_bytes()));
  if (faults_ != nullptr) {
    if (const Err e = faults_->Judge(/*write=*/false, offset, nbytes); e != Err::kOk) {
      ++stats_.read_errors;
      if (obs_ != nullptr) {
        obs_->DeviceError(name_, /*write=*/false, e);
      }
      return e;
    }
  }
  const int64_t repositions_before = stats_.repositions;
  Duration t = Access(offset, nbytes, /*writing=*/false);
  if (faults_ != nullptr) {
    t = faults_->AdjustServiceTime(t);
  }
  ++stats_.reads;
  stats_.bytes_read += nbytes;
  stats_.busy_time += t;
  if (obs_ != nullptr) {
    obs_->DeviceTransfer(name_, /*write=*/false, offset, nbytes, t,
                         stats_.repositions > repositions_before);
  }
  return t;
}

Result<Duration> StorageDevice::Write(int64_t offset, int64_t nbytes) {
  SLED_CHECK(offset >= 0 && nbytes > 0 && offset + nbytes <= capacity_bytes(),
             "%s: write out of range: offset=%lld nbytes=%lld cap=%lld", name_.c_str(),
             static_cast<long long>(offset), static_cast<long long>(nbytes),
             static_cast<long long>(capacity_bytes()));
  if (faults_ != nullptr) {
    if (const Err e = faults_->Judge(/*write=*/true, offset, nbytes); e != Err::kOk) {
      ++stats_.write_errors;
      if (obs_ != nullptr) {
        obs_->DeviceError(name_, /*write=*/true, e);
      }
      return e;
    }
  }
  const int64_t repositions_before = stats_.repositions;
  Duration t = Access(offset, nbytes, /*writing=*/true);
  if (faults_ != nullptr) {
    t = faults_->AdjustServiceTime(t);
  }
  ++stats_.writes;
  stats_.bytes_written += nbytes;
  stats_.busy_time += t;
  if (obs_ != nullptr) {
    obs_->DeviceTransfer(name_, /*write=*/true, offset, nbytes, t,
                         stats_.repositions > repositions_before);
  }
  return t;
}

}  // namespace sled
