#include "src/device/device.h"

#include "src/common/log.h"

namespace sled {

Duration StorageDevice::Read(int64_t offset, int64_t nbytes) {
  SLED_CHECK(offset >= 0 && nbytes > 0 && offset + nbytes <= capacity_bytes(),
             "%s: read out of range: offset=%lld nbytes=%lld cap=%lld", name_.c_str(),
             static_cast<long long>(offset), static_cast<long long>(nbytes),
             static_cast<long long>(capacity_bytes()));
  const Duration t = Access(offset, nbytes, /*writing=*/false);
  ++stats_.reads;
  stats_.bytes_read += nbytes;
  stats_.busy_time += t;
  return t;
}

Duration StorageDevice::Write(int64_t offset, int64_t nbytes) {
  SLED_CHECK(offset >= 0 && nbytes > 0 && offset + nbytes <= capacity_bytes(),
             "%s: write out of range: offset=%lld nbytes=%lld cap=%lld", name_.c_str(),
             static_cast<long long>(offset), static_cast<long long>(nbytes),
             static_cast<long long>(capacity_bytes()));
  const Duration t = Access(offset, nbytes, /*writing=*/true);
  ++stats_.writes;
  stats_.bytes_written += nbytes;
  stats_.busy_time += t;
  return t;
}

}  // namespace sled
