#include "src/device/device.h"

#include "src/common/log.h"
#include "src/obs/observer.h"

namespace sled {

Duration StorageDevice::Read(int64_t offset, int64_t nbytes) {
  SLED_CHECK(offset >= 0 && nbytes > 0 && offset + nbytes <= capacity_bytes(),
             "%s: read out of range: offset=%lld nbytes=%lld cap=%lld", name_.c_str(),
             static_cast<long long>(offset), static_cast<long long>(nbytes),
             static_cast<long long>(capacity_bytes()));
  const int64_t repositions_before = stats_.repositions;
  const Duration t = Access(offset, nbytes, /*writing=*/false);
  ++stats_.reads;
  stats_.bytes_read += nbytes;
  stats_.busy_time += t;
  if (obs_ != nullptr) {
    obs_->DeviceTransfer(name_, /*write=*/false, offset, nbytes, t,
                         stats_.repositions > repositions_before);
  }
  return t;
}

Duration StorageDevice::Write(int64_t offset, int64_t nbytes) {
  SLED_CHECK(offset >= 0 && nbytes > 0 && offset + nbytes <= capacity_bytes(),
             "%s: write out of range: offset=%lld nbytes=%lld cap=%lld", name_.c_str(),
             static_cast<long long>(offset), static_cast<long long>(nbytes),
             static_cast<long long>(capacity_bytes()));
  const int64_t repositions_before = stats_.repositions;
  const Duration t = Access(offset, nbytes, /*writing=*/true);
  ++stats_.writes;
  stats_.bytes_written += nbytes;
  stats_.busy_time += t;
  if (obs_ != nullptr) {
    obs_->DeviceTransfer(name_, /*write=*/true, offset, nbytes, t,
                         stats_.repositions > repositions_before);
  }
  return t;
}

}  // namespace sled
