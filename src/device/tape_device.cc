#include "src/device/tape_device.h"

#include <algorithm>
#include <cmath>

#include "src/common/log.h"

namespace sled {

TapeDevice::TapeDevice(TapeDeviceConfig config, std::string name)
    : StorageDevice(std::move(name)), config_(config) {
  SLED_CHECK(config_.num_tracks >= 1, "tape needs at least one track");
  SLED_CHECK(config_.capacity_bytes % config_.num_tracks == 0,
             "tape capacity must divide evenly into tracks");
}

int TapeDevice::TrackOf(int64_t offset) const {
  const int track = static_cast<int>(offset / TrackLength());
  return std::min(track, config_.num_tracks - 1);
}

int64_t TapeDevice::LongitudinalOf(int64_t offset) const {
  const int track = TrackOf(offset);
  const int64_t within = offset - static_cast<int64_t>(track) * TrackLength();
  // Even tracks run load-point -> end; odd tracks run end -> load-point.
  return (track % 2 == 0) ? within : TrackLength() - within;
}

Duration TapeDevice::LocateTime(int64_t target_offset) const {
  return LocateBetween(config_, position_, target_offset);
}

Duration TapeDevice::LocateBetween(const TapeDeviceConfig& config, int64_t from, int64_t to) {
  if (from == to) {
    return Duration();
  }
  const int64_t track_len = config.capacity_bytes / config.num_tracks;
  auto track_of = [&](int64_t offset) {
    return std::min(static_cast<int>(offset / track_len), config.num_tracks - 1);
  };
  auto longitudinal_of = [&](int64_t offset) {
    const int track = track_of(offset);
    const int64_t within = offset - static_cast<int64_t>(track) * track_len;
    return (track % 2 == 0) ? within : track_len - within;
  };
  const int64_t long_dist = std::abs(longitudinal_of(to) - longitudinal_of(from));
  const int track_switches = std::abs(track_of(to) - track_of(from));
  return config.locate_overhead + TransferTime(long_dist, config.locate_bandwidth_bps) +
         config.track_switch * track_switches;
}

Duration TapeDevice::Mount() {
  if (mounted_) {
    return Duration();
  }
  mounted_ = true;
  position_ = 0;
  return config_.load_time;
}

Duration TapeDevice::Unmount() {
  if (!mounted_) {
    return Duration();
  }
  // Rewind time proportional to how far down the tape the head sits.
  const double frac = static_cast<double>(LongitudinalOf(position_)) /
                      static_cast<double>(TrackLength());
  mounted_ = false;
  position_ = 0;
  return SecondsF(config_.rewind_max.ToSeconds() * frac);
}

DeviceCharacteristics TapeDevice::Nominal() const {
  // Average locate: half the tape longitudinally plus half the track switches,
  // plus (amortized) a share of mount time. The paper's sleds_table would hold
  // the externally characterized value; we compute it from the model.
  const Duration avg_locate = config_.locate_overhead +
                              TransferTime(TrackLength() / 2, config_.locate_bandwidth_bps) +
                              config_.track_switch * (config_.num_tracks / 2);
  return {avg_locate, config_.read_bandwidth_bps};
}

Duration TapeDevice::Estimate(int64_t offset, int64_t nbytes) const {
  Duration t = TransferTime(nbytes, config_.read_bandwidth_bps);
  if (!mounted_) {
    // Mount parks the head at the load point (position 0), so the locate cost
    // is exactly the mounted locate from 0 — zero when offset == 0, matching
    // what Access() charges after its implicit Mount().
    t += config_.load_time + LocateBetween(config_, 0, offset);
  } else {
    t += LocateTime(offset);
  }
  // Access() charges a turnaround per track boundary crossed while streaming,
  // for reads and writes alike; fold it in so plans see the true tape cost.
  const int crossed = TrackOf(offset + nbytes - 1) - TrackOf(offset);
  t += config_.track_switch * crossed;
  return t;
}

Duration TapeDevice::Access(int64_t offset, int64_t nbytes, bool /*writing*/) {
  Duration t;
  if (!mounted_) {
    t += Mount();
  }
  if (offset != position_) {
    t += LocateTime(offset);
    CountReposition();
  }
  t += TransferTime(nbytes, config_.read_bandwidth_bps);
  // Charge turnarounds for track boundaries crossed while streaming.
  const int crossed = TrackOf(offset + nbytes - 1) - TrackOf(offset);
  t += config_.track_switch * crossed;
  position_ = offset + nbytes;
  return t;
}

Autochanger::Autochanger(int num_tapes, int num_drives, TapeDeviceConfig tape_config,
                         Duration exchange_time)
    : num_drives_(num_drives), exchange_time_(exchange_time) {
  SLED_CHECK(num_tapes >= 1 && num_drives >= 1, "autochanger needs tapes and drives");
  tapes_.reserve(static_cast<size_t>(num_tapes));
  for (int i = 0; i < num_tapes; ++i) {
    tapes_.push_back(
        std::make_unique<TapeDevice>(tape_config, "tape" + std::to_string(i)));
  }
}

void Autochanger::AttachObserver(Observer* obs) {
  for (auto& tape : tapes_) {
    tape->AttachObserver(obs);
  }
}

DeviceHealth Autochanger::Health() const {
  DeviceHealth h;
  for (const auto& tape : tapes_) {
    h = CombineHealth(h, tape->Health());
  }
  return h;
}

bool Autochanger::IsMounted(int tape_index) const {
  return std::find(mounted_lru_.begin(), mounted_lru_.end(), tape_index) != mounted_lru_.end();
}

Duration Autochanger::EnsureMounted(int tape_index) {
  SLED_CHECK(tape_index >= 0 && tape_index < num_tapes(), "bad tape index %d", tape_index);
  auto it = std::find(mounted_lru_.begin(), mounted_lru_.end(), tape_index);
  if (it != mounted_lru_.end()) {
    // Already in a drive: refresh LRU position.
    mounted_lru_.erase(it);
    mounted_lru_.push_back(tape_index);
    return Duration();
  }
  Duration t;
  if (static_cast<int>(mounted_lru_.size()) >= num_drives_) {
    const int victim = mounted_lru_.front();
    mounted_lru_.erase(mounted_lru_.begin());
    t += tapes_[victim]->Unmount();
    t += exchange_time_;  // robot puts the victim away
    ++exchanges_;
  }
  t += exchange_time_;  // robot fetches the requested tape
  ++exchanges_;
  t += tapes_[tape_index]->Mount();
  mounted_lru_.push_back(tape_index);
  return t;
}

Result<Duration> Autochanger::Read(int tape_index, int64_t offset, int64_t nbytes) {
  Duration t = EnsureMounted(tape_index);
  SLED_ASSIGN_OR_RETURN(Duration xfer, tapes_[tape_index]->Read(offset, nbytes));
  return t + xfer;
}

Result<Duration> Autochanger::Write(int tape_index, int64_t offset, int64_t nbytes) {
  Duration t = EnsureMounted(tape_index);
  SLED_ASSIGN_OR_RETURN(Duration xfer, tapes_[tape_index]->Write(offset, nbytes));
  return t + xfer;
}

Duration Autochanger::Estimate(int tape_index, int64_t offset, int64_t nbytes) const {
  SLED_CHECK(tape_index >= 0 && tape_index < num_tapes(), "bad tape index %d", tape_index);
  Duration t;
  if (!IsMounted(tape_index)) {
    t += exchange_time_;
    if (static_cast<int>(mounted_lru_.size()) >= num_drives_) {
      t += exchange_time_;  // eviction exchange
    }
  }
  return t + tapes_[tape_index]->Estimate(offset, nbytes);
}

}  // namespace sled
