// Serpentine tape model and a robotic autochanger (jukebox).
//
// The paper motivates SLEDs with hierarchical storage management, where data
// latency spans eleven orders of magnitude "up to hundreds of seconds for
// tape mount and seek" (§1), and cites the Hillyer/Silberschatz and
// Sandstå/Midstraum serpentine-tape locate models as natural SLEDs library
// components (§2). This is a simplified locate-time model in that lineage:
//
//   * The tape records `num_tracks` longitudinal tracks, laid out serpentine:
//     even tracks run forward, odd tracks run backward.
//   * Locate cost = fixed overhead + longitudinal distance / locate speed
//     + per-track-switch head realignment.
//   * An unmounted tape pays load+thread time before any access; unloading
//     rewinds first.
//
// The Autochanger holds a set of tapes in slots and a smaller set of drives;
// accessing a tape that is not mounted costs a robot exchange (plus eviction
// of the least-recently-used mounted tape when all drives are busy).
#ifndef SLEDS_SRC_DEVICE_TAPE_DEVICE_H_
#define SLEDS_SRC_DEVICE_TAPE_DEVICE_H_

#include <memory>
#include <vector>

#include "src/device/device.h"

namespace sled {

struct TapeDeviceConfig {
  int64_t capacity_bytes = 20LL * 1000 * 1000 * 1000;  // DLT-class cartridge
  int num_tracks = 64;
  double read_bandwidth_bps = 1.5e6;
  double locate_bandwidth_bps = 150.0e6;  // high-speed locate, in bytes of track distance
  Duration locate_overhead = Seconds(2);
  Duration track_switch = MillisecondsF(500);
  Duration load_time = Seconds(40);    // insert + thread + calibrate
  Duration rewind_max = Seconds(90);   // full-length rewind
};

class TapeDevice final : public StorageDevice {
 public:
  explicit TapeDevice(TapeDeviceConfig config, std::string name = "tape");

  DeviceCharacteristics Nominal() const override;
  Duration Estimate(int64_t offset, int64_t nbytes) const override;
  int64_t capacity_bytes() const override { return config_.capacity_bytes; }

  bool mounted() const { return mounted_; }

  // Explicit mount/unmount for autochanger control. Mount() threads the tape
  // (no-op if already mounted); Unmount() rewinds proportionally to the
  // current longitudinal position and unloads.
  Duration Mount();
  Duration Unmount();

  // Locate-only cost from the current position (exposed for find -latency
  // style estimates and tests).
  Duration LocateTime(int64_t target_offset) const;

  // Locate cost between two logical positions under a given geometry, without
  // needing a device instance — the building block for locate-aware request
  // scheduling (Hillyer/Silberschatz, Sandstå/Midstraum).
  static Duration LocateBetween(const TapeDeviceConfig& config, int64_t from, int64_t to);

  int64_t position() const { return position_; }
  const TapeDeviceConfig& config() const { return config_; }

 protected:
  Duration Access(int64_t offset, int64_t nbytes, bool writing) override;

 private:
  int64_t TrackLength() const { return config_.capacity_bytes / config_.num_tracks; }
  int TrackOf(int64_t offset) const;
  // Physical longitudinal position (distance from the load point, in bytes of
  // track length) of a logical offset under serpentine layout.
  int64_t LongitudinalOf(int64_t offset) const;

  TapeDeviceConfig config_;
  bool mounted_ = false;
  int64_t position_ = 0;  // logical byte position of the head
};

// Robotic media changer: `num_drives` TapeDevice drives fed from a library of
// tapes. Tapes are addressed by index.
class Autochanger {
 public:
  Autochanger(int num_tapes, int num_drives, TapeDeviceConfig tape_config,
              Duration exchange_time = Seconds(10));

  // Service time for accessing bytes on tape `tape_index`, including any
  // robot exchange and mount required to get the tape into a drive. Fails
  // only when the tape's fault plan rejects the transfer; the mechanical
  // mount/exchange work preceding a failed transfer still happened and is
  // charged via the tape's next successful access (fail-fast contract).
  Result<Duration> Read(int tape_index, int64_t offset, int64_t nbytes);
  Result<Duration> Write(int tape_index, int64_t offset, int64_t nbytes);

  // Estimated service time without changing state.
  Duration Estimate(int tape_index, int64_t offset, int64_t nbytes) const;

  bool IsMounted(int tape_index) const;
  // Attach an observability sink to every tape in the library.
  void AttachObserver(Observer* obs);
  // Library-wide health for SLED construction: the conservative composition
  // (CombineHealth) over every tape. Per-level SLED granularity cannot name
  // the tape a page sits on, so a window on any cartridge degrades the tape
  // levels — the honest summary for a consumer deciding whether to recall.
  DeviceHealth Health() const;
  int num_tapes() const { return static_cast<int>(tapes_.size()); }
  int num_drives() const { return num_drives_; }
  const TapeDevice& tape(int index) const { return *tapes_[index]; }
  // Mutable access, for fault-plan injection (tests, experiments).
  TapeDevice& tape(int index) { return *tapes_[index]; }
  int64_t exchanges() const { return exchanges_; }

 private:
  // Ensures the tape is mounted, returns the positioning cost (0 if already
  // in a drive). Updates drive LRU order.
  Duration EnsureMounted(int tape_index);

  std::vector<std::unique_ptr<TapeDevice>> tapes_;
  int num_drives_;
  Duration exchange_time_;
  std::vector<int> mounted_lru_;  // tape indices, most recently used last
  int64_t exchanges_ = 0;
};

}  // namespace sled

#endif  // SLEDS_SRC_DEVICE_TAPE_DEVICE_H_
