#include "src/device/cdrom_device.h"

#include <cmath>

namespace sled {

// Writes are permitted at media rate so testbeds can master a disc (CD-R
// burn); the IsoFs enforces read-only semantics once sealed.
Duration CdRomDevice::Access(int64_t offset, int64_t nbytes, bool /*writing*/) {
  Duration t = config_.per_request_overhead + TransferTime(nbytes, config_.bandwidth_bps);
  if (offset != head_position_) {
    // Settle time varies a little run to run (laser refocus, CLV respin).
    const double jitter = 0.9 + 0.2 * rng_.UniformDouble();
    t += SecondsF(SeekTime(head_position_, offset).ToSeconds() * jitter);
    CountReposition();
  }
  head_position_ = offset + nbytes;
  return t;
}

}  // namespace sled
