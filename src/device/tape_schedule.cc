#include "src/device/tape_schedule.h"

#include <algorithm>

#include "src/common/log.h"

namespace sled {

std::vector<size_t> ScheduleTapeReads(const TapeDeviceConfig& config, int64_t start,
                                      const std::vector<TapeRequest>& requests) {
  std::vector<size_t> order;
  order.reserve(requests.size());
  std::vector<bool> served(requests.size(), false);
  int64_t position = start;
  for (size_t round = 0; round < requests.size(); ++round) {
    size_t best = requests.size();
    Duration best_cost;
    for (size_t i = 0; i < requests.size(); ++i) {
      if (served[i]) {
        continue;
      }
      const Duration cost = TapeDevice::LocateBetween(config, position, requests[i].offset);
      if (best == requests.size() || cost < best_cost) {
        best = i;
        best_cost = cost;
      }
    }
    SLED_CHECK(best < requests.size(), "scheduler lost a request");
    served[best] = true;
    order.push_back(best);
    position = requests[best].offset + requests[best].length;
  }
  return order;
}

Duration TotalLocateTime(const TapeDeviceConfig& config, int64_t start,
                         const std::vector<TapeRequest>& requests,
                         const std::vector<size_t>& order) {
  SLED_CHECK(order.size() == requests.size(), "order/request size mismatch");
  Duration total;
  int64_t position = start;
  for (size_t idx : order) {
    total += TapeDevice::LocateBetween(config, position, requests[idx].offset);
    position = requests[idx].offset + requests[idx].length;
  }
  return total;
}

}  // namespace sled
