// Primary-memory "device": the cost model for data already in the file cache.
#ifndef SLEDS_SRC_DEVICE_MEMORY_DEVICE_H_
#define SLEDS_SRC_DEVICE_MEMORY_DEVICE_H_

#include "src/device/device.h"

namespace sled {

struct MemoryDeviceConfig {
  // Paper Table 2 values by default (175 ns, 48 MB/s measured by lmbench).
  Duration latency = Nanoseconds(175);
  double bandwidth_bps = 48.0 * 1e6;
  int64_t capacity_bytes = 64LL * 1024 * 1024;
};

class MemoryDevice final : public StorageDevice {
 public:
  explicit MemoryDevice(MemoryDeviceConfig config, std::string name = "memory")
      : StorageDevice(std::move(name)), config_(config) {}

  DeviceCharacteristics Nominal() const override {
    return {config_.latency, config_.bandwidth_bps, {}};
  }

  Duration Estimate(int64_t /*offset*/, int64_t nbytes) const override {
    return config_.latency + TransferTime(nbytes, config_.bandwidth_bps);
  }

  int64_t capacity_bytes() const override { return config_.capacity_bytes; }

 protected:
  Duration Access(int64_t offset, int64_t nbytes, bool /*writing*/) override {
    return Estimate(offset, nbytes);
  }

 private:
  MemoryDeviceConfig config_;
};

}  // namespace sled

#endif  // SLEDS_SRC_DEVICE_MEMORY_DEVICE_H_
