// Abstract storage device model.
//
// Devices are *stateful*: the cost of an access depends on the device's
// current mechanical or protocol position (disk head, tape position, stream
// continuation). A sequential continuation costs pure transfer time; a
// repositioning access additionally pays the device's positioning latency.
// This is exactly the dynamic state the paper argues file interfaces hide and
// SLEDs expose (§1).
//
// Addresses are byte offsets into a flat device address space; block/extent
// layout is the file system's concern.
#ifndef SLEDS_SRC_DEVICE_DEVICE_H_
#define SLEDS_SRC_DEVICE_DEVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/sim_time.h"
#include "src/device/fault.h"

namespace sled {

class Observer;

// Fixed-quantile summary of a latency distribution, in seconds. The scalar
// `DeviceCharacteristics::latency` stays the mean — every pre-existing
// consumer keeps reading it unchanged — while tail-aware consumers
// (distribution-valued SLEDs, rank_by=p99 pickers) read the quantiles. A
// default-constructed summary (all zeros) means "not characterized":
// consumers fall back to a degenerate distribution at the scalar mean.
struct LatencyQuantiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  bool empty() const { return p50 == 0.0 && p90 == 0.0 && p99 == 0.0; }
  static LatencyQuantiles Degenerate(double seconds) { return {seconds, seconds, seconds}; }
  LatencyQuantiles Scaled(double factor) const { return {p50 * factor, p90 * factor, p99 * factor}; }
  friend bool operator==(const LatencyQuantiles&, const LatencyQuantiles&) = default;
};

// Nominal characteristics, the vocabulary of the kernel `sleds_table` (paper
// Tables 2 and 3): latency to the first byte and streaming bandwidth. The
// quantile extension carries the model's positioning-latency *distribution*
// so SLED consumers can rank by tail risk, not just expected value; `latency`
// remains the mean.
struct DeviceCharacteristics {
  Duration latency;
  double bandwidth_bps = 0.0;
  LatencyQuantiles latency_q;

  // The quantile summary, degenerate at the mean when the device model did
  // not characterize its spread (memory, calibrated scalar fills).
  LatencyQuantiles Quantiles() const {
    return latency_q.empty() ? LatencyQuantiles::Degenerate(latency.ToSeconds()) : latency_q;
  }
};

// A level's nominal characterization adjusted for its current health, the
// arithmetic shared by kernel SLED construction and replica routing (both
// must agree, or a router would pick a replica whose SLEDs say otherwise).
// Slow windows scale the whole distribution; GC windows move the mean by
// duty * stall while quantile p absorbs the entire stall whenever duty
// exceeds 1 - p (tail risk lives in the tail). Unavailability is NOT folded
// in here — callers decide between ballooning (SLEDs) and exclusion
// (routing).
struct HealthAdjustedLatency {
  double mean_s = 0.0;
  double bandwidth_bps = 0.0;
  LatencyQuantiles q;
};

inline HealthAdjustedLatency AdjustForHealth(const DeviceCharacteristics& chars,
                                             const DeviceHealth& health) {
  HealthAdjustedLatency out;
  out.mean_s = chars.latency.ToSeconds() * health.latency_factor;
  out.bandwidth_bps = chars.bandwidth_bps / health.latency_factor;
  out.q = chars.Quantiles().Scaled(health.latency_factor);
  if (health.gc_duty > 0.0) {
    const double stall = health.gc_stall_s;
    out.mean_s += health.gc_duty * stall;
    if (health.gc_duty > 0.50) out.q.p50 += stall;
    if (health.gc_duty > 0.10) out.q.p90 += stall;
    if (health.gc_duty > 0.01) out.q.p99 += stall;
  }
  return out;
}

// Running counters every device maintains.
struct DeviceStats {
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t repositions = 0;  // accesses that paid positioning latency
  int64_t read_errors = 0;  // reads rejected by the fault plan
  int64_t write_errors = 0;
  Duration busy_time;
};

class StorageDevice {
 public:
  virtual ~StorageDevice() = default;

  StorageDevice(const StorageDevice&) = delete;
  StorageDevice& operator=(const StorageDevice&) = delete;

  // Service time to read/write `nbytes` at byte `offset`. Updates positioning
  // state and stats. Requires 0 <= offset, nbytes > 0,
  // offset + nbytes <= capacity_bytes(). With a fault plan attached the op
  // may instead fail (kIo for media errors, kUnavailable inside a down
  // window); a failed op is fail-fast — no positioning change, no device
  // time, no device-RNG draw — so the failure's simulated cost is whatever
  // the caller's retry policy spends.
  Result<Duration> Read(int64_t offset, int64_t nbytes);
  Result<Duration> Write(int64_t offset, int64_t nbytes);

  // Nominal (average-case) characteristics for the SLEDs table. For seekable
  // media the latency is the average positioning cost, matching what an
  // lmbench-style external characterization would measure.
  virtual DeviceCharacteristics Nominal() const = 0;

  // Estimated service time of a read at `offset` *without* performing it and
  // without changing device state. The kernel uses Nominal() for SLEDs (the
  // paper's implementation, §4.4); Estimate() enables the "more detailed
  // mechanical estimates" extension.
  //
  // Contract: *Estimate is the expectation of Access*. Every deterministic
  // cost Access() charges (per-request overhead, transfer, positioning from
  // the current state) must appear in the estimate, and every stochastic term
  // must be represented by its mean (e.g. a uniformly distributed rotational
  // delay contributes half a rotation; a symmetric jitter factor contributes
  // its center). Under- or over-counting here is a systematic bias in every
  // plan a SLED consumer builds.
  virtual Duration Estimate(int64_t offset, int64_t nbytes) const = 0;

  // Estimated service time of a *write* at `offset`, for writeback planning.
  // Defaults to the read estimate; devices with asymmetric write costs (tape
  // turnarounds, CD-R command overhead) override it to estimate honestly.
  virtual Duration EstimateWrite(int64_t offset, int64_t nbytes) const {
    return Estimate(offset, nbytes);
  }

  virtual int64_t capacity_bytes() const = 0;

  std::string_view name() const { return name_; }
  const DeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DeviceStats{}; }

  // Report every transfer to an observability sink (trace event + per-device
  // metrics). Pure instrumentation: attaching an observer never changes any
  // returned service time. Also hands the observer's clock to any fault plan
  // so its down/slow windows become live.
  void AttachObserver(Observer* obs);

  // Install / inspect the fault plan. Passing nullptr detaches (the device
  // becomes infallible again, the default). The plan inherits the observer's
  // clock when one is attached; standalone plans with windows need
  // AttachClock() by hand.
  void InjectFaults(std::shared_ptr<FaultPlan> plan);
  FaultPlan* faults() { return faults_.get(); }
  const FaultPlan* faults() const { return faults_.get(); }

  // Health the device reports upward for SLED construction; healthy when no
  // plan is attached.
  DeviceHealth Health() const { return faults_ != nullptr ? faults_->Health() : DeviceHealth{}; }

 protected:
  explicit StorageDevice(std::string name) : name_(std::move(name)) {}

  // Device-specific service time; must update positioning state. `writing`
  // distinguishes writes for devices with asymmetric costs.
  virtual Duration Access(int64_t offset, int64_t nbytes, bool writing) = 0;

  // Called by subclasses from Access() when an access paid positioning cost.
  void CountReposition() { ++stats_.repositions; }

 private:
  std::string name_;
  DeviceStats stats_;
  Observer* obs_ = nullptr;
  std::shared_ptr<FaultPlan> faults_;
};

}  // namespace sled

#endif  // SLEDS_SRC_DEVICE_DEVICE_H_
