// Abstract storage device model.
//
// Devices are *stateful*: the cost of an access depends on the device's
// current mechanical or protocol position (disk head, tape position, stream
// continuation). A sequential continuation costs pure transfer time; a
// repositioning access additionally pays the device's positioning latency.
// This is exactly the dynamic state the paper argues file interfaces hide and
// SLEDs expose (§1).
//
// Addresses are byte offsets into a flat device address space; block/extent
// layout is the file system's concern.
#ifndef SLEDS_SRC_DEVICE_DEVICE_H_
#define SLEDS_SRC_DEVICE_DEVICE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/sim_time.h"

namespace sled {

class Observer;

// Nominal characteristics, the vocabulary of the kernel `sleds_table` (paper
// Tables 2 and 3): latency to the first byte and streaming bandwidth.
struct DeviceCharacteristics {
  Duration latency;
  double bandwidth_bps = 0.0;
};

// Running counters every device maintains.
struct DeviceStats {
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t repositions = 0;  // accesses that paid positioning latency
  Duration busy_time;
};

class StorageDevice {
 public:
  virtual ~StorageDevice() = default;

  StorageDevice(const StorageDevice&) = delete;
  StorageDevice& operator=(const StorageDevice&) = delete;

  // Service time to read/write `nbytes` at byte `offset`. Updates positioning
  // state and stats. Requires 0 <= offset, nbytes > 0,
  // offset + nbytes <= capacity_bytes().
  Duration Read(int64_t offset, int64_t nbytes);
  Duration Write(int64_t offset, int64_t nbytes);

  // Nominal (average-case) characteristics for the SLEDs table. For seekable
  // media the latency is the average positioning cost, matching what an
  // lmbench-style external characterization would measure.
  virtual DeviceCharacteristics Nominal() const = 0;

  // Estimated service time of a read at `offset` *without* performing it and
  // without changing device state. The kernel uses Nominal() for SLEDs (the
  // paper's implementation, §4.4); Estimate() enables the "more detailed
  // mechanical estimates" extension.
  virtual Duration Estimate(int64_t offset, int64_t nbytes) const = 0;

  // Estimated service time of a *write* at `offset`, for writeback planning.
  // Defaults to the read estimate; devices with asymmetric write costs (tape
  // turnarounds, CD-R command overhead) override it to estimate honestly.
  virtual Duration EstimateWrite(int64_t offset, int64_t nbytes) const {
    return Estimate(offset, nbytes);
  }

  virtual int64_t capacity_bytes() const = 0;

  std::string_view name() const { return name_; }
  const DeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DeviceStats{}; }

  // Report every transfer to an observability sink (trace event + per-device
  // metrics). Pure instrumentation: attaching an observer never changes any
  // returned service time.
  void AttachObserver(Observer* obs) { obs_ = obs; }

 protected:
  explicit StorageDevice(std::string name) : name_(std::move(name)) {}

  // Device-specific service time; must update positioning state. `writing`
  // distinguishes writes for devices with asymmetric costs.
  virtual Duration Access(int64_t offset, int64_t nbytes, bool writing) = 0;

  // Called by subclasses from Access() when an access paid positioning cost.
  void CountReposition() { ++stats_.repositions; }

 private:
  std::string name_;
  DeviceStats stats_;
  Observer* obs_ = nullptr;
};

}  // namespace sled

#endif  // SLEDS_SRC_DEVICE_DEVICE_H_
