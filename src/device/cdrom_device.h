// CD-ROM model: slow, re-clamping seeks and constant-linear-velocity
// streaming. Matches the paper's ISO9660 testbed (Table 2: 130 ms, 2.8 MB/s).
#ifndef SLEDS_SRC_DEVICE_CDROM_DEVICE_H_
#define SLEDS_SRC_DEVICE_CDROM_DEVICE_H_

#include "src/common/rng.h"
#include "src/device/device.h"

namespace sled {

struct CdRomDeviceConfig {
  int64_t capacity_bytes = 650LL * 1024 * 1024;

  // Seek time grows linearly with distance: a short hop still pays laser
  // settle + CLV respin; a full-stroke seek pays the maximum. Uniform-average
  // = min + slope/2 = 130 ms with the defaults.
  Duration min_seek = Milliseconds(80);
  Duration full_stroke_extra = Milliseconds(100);

  double bandwidth_bps = 2.8e6;  // ~18x drive
  // Per-command cost (ATAPI command + ECC pipeline restart).
  Duration per_request_overhead = Milliseconds(1);
  uint64_t seed = 2;
};

class CdRomDevice final : public StorageDevice {
 public:
  explicit CdRomDevice(CdRomDeviceConfig config, std::string name = "cdrom")
      : StorageDevice(std::move(name)), config_(config), rng_(config.seed) {}

  DeviceCharacteristics Nominal() const override {
    // Seek time is uniform over distance (quantile min + extra*p) and the
    // settle jitter factor has quantile 0.9 + 0.2p; the comonotonic product
    // approximates the combined positioning distribution.
    const double min_s = config_.min_seek.ToSeconds();
    const double extra_s = config_.full_stroke_extra.ToSeconds();
    auto q = [&](double p) { return (min_s + extra_s * p) * (0.9 + 0.2 * p); };
    DeviceCharacteristics c{config_.min_seek + config_.full_stroke_extra / 2,
                            config_.bandwidth_bps,
                            {q(0.50), q(0.90), q(0.99)}};
    return c;
  }

  Duration Estimate(int64_t offset, int64_t nbytes) const override {
    // Expectation of Access(): per-command overhead plus transfer, plus the
    // seek on reposition (the settle jitter 0.9 + 0.2*U has mean 1.0). Reads
    // and burns charge the same costs, so EstimateWrite is this estimate too.
    Duration t = config_.per_request_overhead + TransferTime(nbytes, config_.bandwidth_bps);
    if (offset != head_position_) {
      t += SeekTime(head_position_, offset);
    }
    return t;
  }

  int64_t capacity_bytes() const override { return config_.capacity_bytes; }

  Duration SeekTime(int64_t from, int64_t to) const {
    const double dist =
        std::abs(static_cast<double>(to - from)) / static_cast<double>(config_.capacity_bytes);
    return config_.min_seek + SecondsF(config_.full_stroke_extra.ToSeconds() * dist);
  }

 protected:
  Duration Access(int64_t offset, int64_t nbytes, bool writing) override;

 private:
  CdRomDeviceConfig config_;
  Rng rng_;
  int64_t head_position_ = -1;  // -1: position unknown, first access must seek
};

}  // namespace sled

#endif  // SLEDS_SRC_DEVICE_CDROM_DEVICE_H_
