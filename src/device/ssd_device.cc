#include "src/device/ssd_device.h"

#include <algorithm>
#include <cmath>

#include "src/common/log.h"

namespace sled {

SsdDevice::SsdDevice(SsdDeviceConfig config, std::string name)
    : StorageDevice(std::move(name)), config_(config), rng_(config.seed) {
  SLED_CHECK(config_.capacity_bytes > 0 && config_.page_bytes > 0 &&
                 config_.capacity_bytes % config_.page_bytes == 0,
             "ssd capacity must be a positive multiple of the page size");
  SLED_CHECK(config_.pages_per_block >= 1 && config_.num_channels >= 1,
             "ssd needs at least one page per block and one channel");
  SLED_CHECK(config_.overprovision > 0.0, "ssd needs overprovisioned flash to GC into");
  SLED_CHECK(config_.gc_low_watermark > 0.0 && config_.gc_low_watermark < 1.0,
             "gc_low_watermark must be a fraction in (0, 1)");
  SLED_CHECK(config_.greedy_bias > 0.0 && config_.greedy_bias <= 1.0 &&
                 config_.gc_jitter >= 0.0 && config_.gc_jitter < 1.0,
             "bad GC victim-selection parameters");
  logical_pages_ = config_.capacity_bytes / config_.page_bytes;
  physical_pages_ =
      static_cast<int64_t>(std::llround(static_cast<double>(logical_pages_) *
                                        (1.0 + config_.overprovision)));
  SLED_CHECK(physical_pages_ > logical_pages_, "overprovision rounds to zero spare pages");
  free_pages_ = physical_pages_;
  ftl_.assign(static_cast<size_t>(logical_pages_), -1);
}

int64_t SsdDevice::PagesSpanned(int64_t offset, int64_t nbytes) const {
  const int64_t first = offset / config_.page_bytes;
  const int64_t last = (offset + nbytes - 1) / config_.page_bytes;
  return last - first + 1;
}

Duration SsdDevice::ArrayTime(int64_t pages, Duration per_page) const {
  const int64_t waves =
      (pages + config_.num_channels - 1) / config_.num_channels;
  return per_page * waves;
}

Duration SsdDevice::PendingStall() const {
  return std::min(gc_debt_, config_.gc_stall_cap);
}

int64_t SsdDevice::PhysicalPageOf(int64_t logical_page) const {
  SLED_CHECK(logical_page >= 0 && logical_page < logical_pages_, "bad logical page");
  return ftl_[static_cast<size_t>(logical_page)];
}

double SsdDevice::write_amplification() const {
  if (host_pages_written_ == 0) {
    return 1.0;
  }
  return static_cast<double>(host_pages_written_ + gc_pages_written_) /
         static_cast<double>(host_pages_written_);
}

void SsdDevice::RunGcCycle() {
  // Greedy victim selection finds a block emptier than the array average;
  // its valid fraction is occupancy * greedy_bias with a seeded jitter (the
  // model's stand-in for how lucky this particular pick is).
  const double occupancy =
      1.0 - static_cast<double>(std::max<int64_t>(free_pages_, 0)) /
                static_cast<double>(physical_pages_);
  const double jitter = 1.0 + config_.gc_jitter * (2.0 * rng_.UniformDouble() - 1.0);
  const double valid_frac =
      std::clamp(occupancy * config_.greedy_bias * jitter, 0.0, 0.95);
  const int64_t moved = static_cast<int64_t>(
      std::llround(valid_frac * static_cast<double>(config_.pages_per_block)));
  // Valid pages are read out and re-programmed elsewhere, then the block is
  // erased; net reclaim is the block minus what was copied.
  gc_debt_ += ArrayTime(moved, config_.read_page + config_.program_page) +
              config_.erase_block;
  gc_pages_written_ += moved;
  free_pages_ += config_.pages_per_block - moved;
  ++gc_cycles_;
}

Duration SsdDevice::Access(int64_t offset, int64_t nbytes, bool writing) {
  const int64_t pages = PagesSpanned(offset, nbytes);
  Duration t = config_.per_request_overhead +
               ArrayTime(pages, writing ? config_.program_page : config_.read_page);
  // Drain *pre-existing* GC debt first (bounded stall), so Estimate — which
  // sees the same debt — prices this op exactly. GC triggered by this write
  // becomes debt for later ops, like a real FTL's background collector.
  const Duration stall = PendingStall();
  t += stall;
  gc_debt_ -= stall;
  if (writing) {
    const int64_t first = offset / config_.page_bytes;
    for (int64_t p = 0; p < pages; ++p) {
      // Out-of-place update: the old physical page (if any) becomes garbage,
      // the logical page maps onto the next slot of the log-structured ring.
      ftl_[static_cast<size_t>(first + p)] = next_physical_;
      next_physical_ = (next_physical_ + 1) % physical_pages_;
    }
    host_pages_written_ += pages;
    free_pages_ -= pages;
    while (free_pages_ < 0 || free_fraction() < config_.gc_low_watermark) {
      RunGcCycle();
    }
  }
  return t;
}

Duration SsdDevice::Estimate(int64_t offset, int64_t nbytes) const {
  return config_.per_request_overhead +
         ArrayTime(PagesSpanned(offset, nbytes), config_.read_page) + PendingStall();
}

Duration SsdDevice::EstimateWrite(int64_t offset, int64_t nbytes) const {
  return config_.per_request_overhead +
         ArrayTime(PagesSpanned(offset, nbytes), config_.program_page) + PendingStall();
}

DeviceCharacteristics SsdDevice::Nominal() const {
  // First byte: one command plus one page read. Streaming: all channels
  // transferring page-sized reads back to back.
  const Duration base = config_.per_request_overhead + config_.read_page;
  const double bw = static_cast<double>(config_.num_channels) *
                    static_cast<double>(config_.page_bytes) /
                    config_.read_page.ToSeconds();
  const double base_s = base.ToSeconds();
  const double cap_s = config_.gc_stall_cap.ToSeconds();
  const double duty = config_.nominal_gc_duty;
  DeviceCharacteristics c{SecondsF(base_s + duty * cap_s), bw};
  // A duty-fraction Bernoulli stall lands in quantile p only when duty
  // exceeds 1-p: the clean path is the p50, the full stall is the p99.
  c.latency_q = {base_s + (duty > 0.50 ? cap_s : 0.0),
                 base_s + (duty > 0.10 ? cap_s : 0.0),
                 base_s + (duty >= 0.01 ? cap_s : 0.0)};
  return c;
}

}  // namespace sled
