// Network storage model: an NFS-style remote store. A fresh request stream
// pays the full round-trip-plus-server-disk latency; a sequential
// continuation is served from server readahead at wire bandwidth. Matches the
// paper's NFS testbed (Table 2: 270 ms first-byte, 1.0 MB/s — lmbench numbers
// over 10 Mb ethernet with server disk in the path).
#ifndef SLEDS_SRC_DEVICE_NETWORK_DEVICE_H_
#define SLEDS_SRC_DEVICE_NETWORK_DEVICE_H_

#include "src/common/rng.h"
#include "src/device/device.h"

namespace sled {

struct NetworkDeviceConfig {
  int64_t capacity_bytes = 4LL * 1024 * 1024 * 1024;
  Duration first_byte_latency = Milliseconds(270);
  double bandwidth_bps = 1.0e6;
  // Per-RPC cost even within a server-readahead stream (request send, server
  // wakeup, reply header) — the component kernel readahead amortizes.
  Duration per_request_overhead = Milliseconds(2);
  // Fractional jitter on the latency component (network queueing, server
  // cache state); 0 disables.
  double latency_jitter = 0.15;
  uint64_t seed = 3;
};

class NetworkDevice final : public StorageDevice {
 public:
  explicit NetworkDevice(NetworkDeviceConfig config, std::string name = "nfs")
      : StorageDevice(std::move(name)), config_(config), rng_(config.seed) {}

  DeviceCharacteristics Nominal() const override {
    return {config_.first_byte_latency, config_.bandwidth_bps};
  }

  Duration Estimate(int64_t offset, int64_t nbytes) const override {
    Duration t = TransferTime(nbytes, config_.bandwidth_bps);
    if (offset != stream_position_) {
      t += config_.first_byte_latency;
    }
    return t;
  }

  int64_t capacity_bytes() const override { return config_.capacity_bytes; }

 protected:
  Duration Access(int64_t offset, int64_t nbytes, bool /*writing*/) override {
    Duration t = config_.per_request_overhead + TransferTime(nbytes, config_.bandwidth_bps);
    if (offset != stream_position_) {
      const double jitter =
          1.0 + config_.latency_jitter * (2.0 * rng_.UniformDouble() - 1.0);
      t += SecondsF(config_.first_byte_latency.ToSeconds() * jitter);
      CountReposition();
    }
    stream_position_ = offset + nbytes;
    return t;
  }

 private:
  NetworkDeviceConfig config_;
  Rng rng_;
  int64_t stream_position_ = -1;  // -1: no stream open yet
};

}  // namespace sled

#endif  // SLEDS_SRC_DEVICE_NETWORK_DEVICE_H_
