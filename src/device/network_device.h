// Network storage model: an NFS-style remote store. A fresh request stream
// pays the full round-trip-plus-server-disk latency; a sequential
// continuation is served from server readahead at wire bandwidth. Matches the
// paper's NFS testbed (Table 2: 270 ms first-byte, 1.0 MB/s — lmbench numbers
// over 10 Mb ethernet with server disk in the path).
#ifndef SLEDS_SRC_DEVICE_NETWORK_DEVICE_H_
#define SLEDS_SRC_DEVICE_NETWORK_DEVICE_H_

#include "src/common/rng.h"
#include "src/device/device.h"

namespace sled {

struct NetworkDeviceConfig {
  int64_t capacity_bytes = 4LL * 1024 * 1024 * 1024;
  Duration first_byte_latency = Milliseconds(270);
  double bandwidth_bps = 1.0e6;
  // Per-RPC cost even within a server-readahead stream (request send, server
  // wakeup, reply header) — the component kernel readahead amortizes.
  Duration per_request_overhead = Milliseconds(2);
  // Fractional jitter on the latency component (network queueing, server
  // cache state); 0 disables.
  double latency_jitter = 0.15;
  uint64_t seed = 3;
};

class NetworkDevice final : public StorageDevice {
 public:
  explicit NetworkDevice(NetworkDeviceConfig config, std::string name = "nfs")
      : StorageDevice(std::move(name)), config_(config), rng_(config.seed) {}

  DeviceCharacteristics Nominal() const override {
    // The first-byte latency carries symmetric uniform jitter, so quantile p
    // sits at 1 + jitter*(2p - 1) times the center.
    const double lat_s = config_.first_byte_latency.ToSeconds();
    auto q = [&](double p) { return lat_s * (1.0 + config_.latency_jitter * (2.0 * p - 1.0)); };
    DeviceCharacteristics c{config_.first_byte_latency, config_.bandwidth_bps,
                            {q(0.50), q(0.90), q(0.99)}};
    return c;
  }

  Duration Estimate(int64_t offset, int64_t nbytes) const override {
    // Expectation of Access(): per-RPC overhead plus transfer, plus the
    // first-byte latency on a stream break (the jitter factor is symmetric
    // around 1.0, so its mean is the configured latency itself).
    Duration t = config_.per_request_overhead + TransferTime(nbytes, config_.bandwidth_bps);
    if (offset != stream_position_) {
      t += config_.first_byte_latency;
    }
    return t;
  }

  int64_t capacity_bytes() const override { return config_.capacity_bytes; }

 protected:
  Duration Access(int64_t offset, int64_t nbytes, bool /*writing*/) override {
    Duration t = config_.per_request_overhead + TransferTime(nbytes, config_.bandwidth_bps);
    if (offset != stream_position_) {
      const double jitter =
          1.0 + config_.latency_jitter * (2.0 * rng_.UniformDouble() - 1.0);
      t += SecondsF(config_.first_byte_latency.ToSeconds() * jitter);
      CountReposition();
    }
    stream_position_ = offset + nbytes;
    return t;
  }

 private:
  NetworkDeviceConfig config_;
  Rng rng_;
  int64_t stream_position_ = -1;  // -1: no stream open yet
};

}  // namespace sled

#endif  // SLEDS_SRC_DEVICE_NETWORK_DEVICE_H_
