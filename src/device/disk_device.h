// Hard disk model: seek curve, rotational latency, zoned transfer rates,
// sequential streaming detection.
//
// The model follows Ruemmler & Wilkes ("An introduction to disk drive
// modeling", cited by the paper): seek time is a concave function of seek
// distance, a repositioning access pays seek plus rotational latency, and a
// sequential continuation streams at the zone's media rate. Zoned recording
// (more sectors on outer tracks) follows Van Meter's multi-zone disk
// characterization [Van97], which the paper lists as the planned refinement
// of the single-entry sleds_table.
#ifndef SLEDS_SRC_DEVICE_DISK_DEVICE_H_
#define SLEDS_SRC_DEVICE_DISK_DEVICE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/device/device.h"

namespace sled {

struct DiskDeviceConfig {
  int64_t capacity_bytes = 9LL * 1000 * 1000 * 1000;  // late-90s 9 GB drive

  // Seek curve: seek(d) = min + (max - min) * sqrt(d), d = fraction of full
  // stroke. Defaults put the uniform-average seek at ~13.8 ms, which with half
  // a 7200 rpm rotation (~4.2 ms) reproduces the paper's Table 2 value of
  // 18 ms average access latency.
  Duration min_seek = MicrosecondsF(1500);
  Duration max_seek = Milliseconds(20);
  double rpm = 7200.0;

  // Fixed per-command cost (controller + bus), paid by every request even
  // when it continues a sequential stream. This is what kernel readahead
  // amortizes.
  Duration per_request_overhead = MicrosecondsF(300);

  // Zoned recording: bandwidth declines linearly from outer to inner zone.
  // Defaults average ~9.0 MB/s (Table 2).
  int num_zones = 8;
  double outer_bandwidth_bps = 9.9e6;
  double inner_bandwidth_bps = 8.1e6;

  uint64_t seed = 1;  // rotational-phase randomness
};

class DiskDevice final : public StorageDevice {
 public:
  explicit DiskDevice(DiskDeviceConfig config, std::string name = "disk");

  DeviceCharacteristics Nominal() const override;
  Duration Estimate(int64_t offset, int64_t nbytes) const override;
  int64_t capacity_bytes() const override { return config_.capacity_bytes; }

  // Zone media rate at a byte address (exposed for tests and calibration).
  double BandwidthAt(int64_t offset) const;
  int num_zones() const { return config_.num_zones; }
  // Seek time between two byte addresses (head-movement component only).
  Duration SeekTime(int64_t from, int64_t to) const;

  // True when a read at `offset` would continue the current stream and thus
  // pay no positioning cost.
  bool IsSequential(int64_t offset) const { return offset == head_position_; }

 protected:
  Duration Access(int64_t offset, int64_t nbytes, bool writing) override;

 private:
  Duration RotationPeriod() const { return SecondsF(60.0 / config_.rpm); }

  DiskDeviceConfig config_;
  Rng rng_;
  int64_t head_position_ = -1;  // byte address following the last access (-1: unknown, must position)
};

}  // namespace sled

#endif  // SLEDS_SRC_DEVICE_DISK_DEVICE_H_
