// Flash SSD model: page-mapped FTL, channel-parallel transfers, and
// garbage collection whose cost surfaces as deterministic, seeded stalls.
//
// Flash inverts the mechanical devices' cost structure: there is no
// positioning state — a random page read costs the same as a sequential one —
// but writes are *asymmetric in time*. Programs are slower than reads, blocks
// must be erased before reuse, and sustained writes force the FTL to garbage
// collect: copy the still-valid pages out of a victim block, erase it, and
// only then reclaim free space. That background work lands on foreground ops
// as latency spikes — the tail variability the HDFS SSD study in PAPERS.md
// measures, and the reason a scalar SLED latency cannot describe an SSD. The
// model keeps GC cost in an explicit debt accumulator drained in bounded
// stalls, so every number is a deterministic function of (config, op
// sequence, seed).
//
// Nominal() reports distribution-valued characteristics: p50 at the clean
// read path, p99 at read-plus-full-GC-stall — the spread rank_by=p99 pickers
// exist to consume.
#ifndef SLEDS_SRC_DEVICE_SSD_DEVICE_H_
#define SLEDS_SRC_DEVICE_SSD_DEVICE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/device/device.h"

namespace sled {

struct SsdDeviceConfig {
  // Logical (host-visible) capacity; physical flash is larger by
  // `overprovision` so the FTL always has somewhere to write.
  int64_t capacity_bytes = 8LL * 1024 * 1024 * 1024;
  int64_t page_bytes = 4096;
  int pages_per_block = 256;
  int num_channels = 8;

  // Flash timings (mid-2010s MLC-class part).
  Duration read_page = MicrosecondsF(60);
  Duration program_page = MicrosecondsF(300);
  Duration erase_block = Milliseconds(2);
  // Per-command cost (host interface, FTL lookup).
  Duration per_request_overhead = MicrosecondsF(20);

  // FTL policy.
  double overprovision = 0.07;      // physical = logical * (1 + overprovision)
  double gc_low_watermark = 0.10;   // GC when free/physical drops below this
  // Greedy victim selection finds blocks emptier than average; the victim's
  // valid fraction is occupancy * greedy_bias, jittered ±gc_jitter (seeded).
  double greedy_bias = 0.8;
  double gc_jitter = 0.10;
  // Foreground ops drain outstanding GC debt in stalls of at most this much
  // per op — the bounded pause a real FTL enforces.
  Duration gc_stall_cap = Milliseconds(1);
  // Long-run fraction of ops that catch a GC stall, used only for the
  // *nominal* mean/quantiles (live health comes from the fault plan / debt).
  double nominal_gc_duty = 0.01;

  uint64_t seed = 5;
};

class SsdDevice final : public StorageDevice {
 public:
  explicit SsdDevice(SsdDeviceConfig config, std::string name = "ssd");

  DeviceCharacteristics Nominal() const override;
  Duration Estimate(int64_t offset, int64_t nbytes) const override;
  Duration EstimateWrite(int64_t offset, int64_t nbytes) const override;
  int64_t capacity_bytes() const override { return config_.capacity_bytes; }

  // (gc + host) programs per host program; 1.0 until GC has ever run.
  double write_amplification() const;
  // GC work accrued but not yet charged to a foreground op.
  Duration gc_debt() const { return gc_debt_; }
  int64_t gc_cycles() const { return gc_cycles_; }
  double free_fraction() const {
    return static_cast<double>(free_pages_) / static_cast<double>(physical_pages_);
  }
  // Logical-to-physical translation (-1 while unwritten). Exposed for tests.
  int64_t PhysicalPageOf(int64_t logical_page) const;

 protected:
  Duration Access(int64_t offset, int64_t nbytes, bool writing) override;

 private:
  int64_t PagesSpanned(int64_t offset, int64_t nbytes) const;
  // Channel-parallel array time for `pages` pages at `per_page` each.
  Duration ArrayTime(int64_t pages, Duration per_page) const;
  // Debt this op would drain right now (bounded by gc_stall_cap).
  Duration PendingStall() const;
  void RunGcCycle();

  SsdDeviceConfig config_;
  Rng rng_;
  int64_t logical_pages_ = 0;
  int64_t physical_pages_ = 0;
  int64_t free_pages_ = 0;
  int64_t next_physical_ = 0;        // bump allocator over the physical array
  std::vector<int64_t> ftl_;         // logical page -> physical page, -1 unmapped
  Duration gc_debt_;
  int64_t gc_cycles_ = 0;
  int64_t host_pages_written_ = 0;
  int64_t gc_pages_written_ = 0;
};

}  // namespace sled

#endif  // SLEDS_SRC_DEVICE_SSD_DEVICE_H_
