// Locate-aware ordering of tape read requests.
//
// The paper cites Hillyer & Silberschatz's DLT model and Sandstå &
// Midstraum's simplified locate-time model as "good candidates to be
// incorporated into SLEDs libraries, hiding the details of the tape drive
// from application writers" (§2). This module is that candidate: given a set
// of byte ranges on one serpentine tape, order them so the total locate time
// is small (greedy nearest-neighbour under the locate-cost metric — within a
// few percent of optimal for the sizes HSM recall batches see).
#ifndef SLEDS_SRC_DEVICE_TAPE_SCHEDULE_H_
#define SLEDS_SRC_DEVICE_TAPE_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "src/device/tape_device.h"

namespace sled {

struct TapeRequest {
  int64_t offset = 0;
  int64_t length = 0;
};

// Order for serving `requests` starting from head position `start`, as
// indices into `requests`. Greedy: repeatedly serve the request with the
// cheapest locate from the current position; the head then sits at the end
// of that request.
std::vector<size_t> ScheduleTapeReads(const TapeDeviceConfig& config, int64_t start,
                                      const std::vector<TapeRequest>& requests);

// Total locate time of serving `requests` in the given order from `start`
// (transfer time excluded — it is order-independent).
Duration TotalLocateTime(const TapeDeviceConfig& config, int64_t start,
                         const std::vector<TapeRequest>& requests,
                         const std::vector<size_t>& order);

}  // namespace sled

#endif  // SLEDS_SRC_DEVICE_TAPE_SCHEDULE_H_
