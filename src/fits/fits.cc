#include "src/fits/fits.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "src/common/log.h"

namespace sled {
namespace {

std::string Card(const std::string& keyword, const std::string& value,
                 const std::string& comment = "") {
  char buf[kFitsCardLen + 1];
  // "KEYWORD =                value / comment", padded to 80 columns.
  std::snprintf(buf, sizeof(buf), "%-8.8s= %20s%s%-.47s", keyword.c_str(), value.c_str(),
                comment.empty() ? "" : " / ", comment.c_str());
  std::string card(buf);
  card.resize(kFitsCardLen, ' ');
  return card;
}

std::string EndCard() {
  std::string card = "END";
  card.resize(kFitsCardLen, ' ');
  return card;
}

// Store an unsigned big-endian integer of `n` bytes.
void PutBe(uint64_t v, int n, char* out) {
  for (int i = 0; i < n; ++i) {
    out[i] = static_cast<char>((v >> (8 * (n - 1 - i))) & 0xFF);
  }
}

uint64_t GetBe(const char* in, int n) {
  uint64_t v = 0;
  for (int i = 0; i < n; ++i) {
    v = (v << 8) | static_cast<uint8_t>(in[i]);
  }
  return v;
}

int64_t SaturateRound(double v, int64_t lo, int64_t hi) {
  if (std::isnan(v)) {
    return 0;
  }
  const double r = std::nearbyint(v);
  if (r <= static_cast<double>(lo)) {
    return lo;
  }
  if (r >= static_cast<double>(hi)) {
    return hi;
  }
  return static_cast<int64_t>(r);
}

}  // namespace

std::string FitsEncodeHeader(const FitsHeader& header) {
  std::string out;
  out += Card("SIMPLE", "T", "conforms to FITS standard");
  out += Card("BITPIX", std::to_string(header.bitpix), "bits per data element");
  out += Card("NAXIS", std::to_string(header.naxis.size()), "number of axes");
  for (size_t i = 0; i < header.naxis.size(); ++i) {
    out += Card("NAXIS" + std::to_string(i + 1), std::to_string(header.naxis[i]));
  }
  out += EndCard();
  const size_t padded = ((out.size() + kFitsBlock - 1) / kFitsBlock) * kFitsBlock;
  out.resize(padded, ' ');
  return out;
}

Result<FitsHeader> FitsParseHeader(std::string_view bytes) {
  FitsHeader header;
  header.bitpix = 0;
  int64_t naxis_count = -1;
  size_t pos = 0;
  bool saw_end = false;
  bool saw_simple = false;
  while (pos + kFitsCardLen <= bytes.size()) {
    const std::string_view card = bytes.substr(pos, kFitsCardLen);
    pos += kFitsCardLen;
    const std::string_view keyword = card.substr(0, 8);
    if (keyword.starts_with("END")) {
      saw_end = true;
      break;
    }
    // Value cards: "KEYWORD = value [/ comment]".
    std::string_view value;
    if (card.size() > 10 && card[8] == '=') {
      value = card.substr(10);
      const size_t slash = value.find('/');
      if (slash != std::string_view::npos) {
        value = value.substr(0, slash);
      }
      while (!value.empty() && value.front() == ' ') {
        value.remove_prefix(1);
      }
      while (!value.empty() && value.back() == ' ') {
        value.remove_suffix(1);
      }
    }
    if (keyword.starts_with("SIMPLE")) {
      if (value != "T") {
        return Err::kInval;
      }
      saw_simple = true;
    } else if (keyword.starts_with("BITPIX")) {
      header.bitpix = static_cast<int>(std::strtol(std::string(value).c_str(), nullptr, 10));
    } else if (keyword.starts_with("NAXIS")) {
      const std::string_view axis = keyword.substr(5);
      const int64_t v = std::strtoll(std::string(value).c_str(), nullptr, 10);
      if (axis.empty() || axis[0] == ' ') {
        naxis_count = v;
        if (naxis_count < 0 || naxis_count > 8) {
          return Err::kInval;
        }
        header.naxis.assign(static_cast<size_t>(naxis_count), 0);
      } else {
        const int idx = static_cast<int>(std::strtol(std::string(axis).c_str(), nullptr, 10));
        if (idx < 1 || idx > static_cast<int>(header.naxis.size()) || v < 0) {
          return Err::kInval;
        }
        header.naxis[static_cast<size_t>(idx - 1)] = v;
      }
    }
    // Unknown keywords are permitted and ignored.
  }
  if (!saw_end || !saw_simple || naxis_count < 0) {
    return Err::kInval;
  }
  switch (header.bitpix) {
    case 8:
    case 16:
    case 32:
    case -32:
    case -64:
      break;
    default:
      return Err::kInval;
  }
  header.data_offset = static_cast<int64_t>(((pos + kFitsBlock - 1) / kFitsBlock) * kFitsBlock);
  return header;
}

void FitsEncodePixel(double value, int bitpix, char* out) {
  switch (bitpix) {
    case 8:
      PutBe(static_cast<uint64_t>(SaturateRound(value, 0, 255)), 1, out);
      return;
    case 16:
      PutBe(static_cast<uint64_t>(static_cast<uint16_t>(
                SaturateRound(value, std::numeric_limits<int16_t>::min(),
                              std::numeric_limits<int16_t>::max()))),
            2, out);
      return;
    case 32:
      PutBe(static_cast<uint64_t>(static_cast<uint32_t>(
                SaturateRound(value, std::numeric_limits<int32_t>::min(),
                              std::numeric_limits<int32_t>::max()))),
            4, out);
      return;
    case -32:
      PutBe(std::bit_cast<uint32_t>(static_cast<float>(value)), 4, out);
      return;
    case -64:
      PutBe(std::bit_cast<uint64_t>(value), 8, out);
      return;
    default:
      SLED_CHECK(false, "unsupported BITPIX %d", bitpix);
  }
}

double FitsDecodePixel(const char* in, int bitpix) {
  switch (bitpix) {
    case 8:
      return static_cast<double>(GetBe(in, 1));
    case 16:
      return static_cast<double>(static_cast<int16_t>(GetBe(in, 2)));
    case 32:
      return static_cast<double>(static_cast<int32_t>(GetBe(in, 4)));
    case -32:
      return static_cast<double>(std::bit_cast<float>(static_cast<uint32_t>(GetBe(in, 4))));
    case -64:
      return std::bit_cast<double>(GetBe(in, 8));
    default:
      SLED_CHECK(false, "unsupported BITPIX %d", bitpix);
  }
}

Result<void> FitsWriteImage(SimKernel& kernel, Process& process, std::string_view path,
                            const FitsImage& image) {
  if (image.pixels.size() != static_cast<size_t>(image.header.element_count())) {
    return Err::kInval;
  }
  SLED_ASSIGN_OR_RETURN(int fd, kernel.Create(process, path));
  const std::string header = FitsEncodeHeader(image.header);
  SLED_RETURN_IF_ERROR(
      kernel.Write(process, fd, std::span<const char>(header.data(), header.size())));

  const int64_t elem = image.header.element_size();
  std::string buf;
  buf.reserve(static_cast<size_t>(64 * kKiB));
  auto flush = [&]() -> Result<void> {
    if (!buf.empty()) {
      SLED_RETURN_IF_ERROR(kernel.Write(process, fd, std::span<const char>(buf.data(), buf.size())));
      buf.clear();
    }
    return Result<void>::Ok();
  };
  char scratch[8];
  for (double v : image.pixels) {
    FitsEncodePixel(v, image.header.bitpix, scratch);
    buf.append(scratch, static_cast<size_t>(elem));
    if (buf.size() >= static_cast<size_t>(64 * kKiB)) {
      SLED_RETURN_IF_ERROR(flush());
    }
  }
  SLED_RETURN_IF_ERROR(flush());
  // Pad the data unit to the blocking factor.
  const int64_t pad = image.header.padded_data_bytes() - image.header.data_bytes();
  if (pad > 0) {
    const std::string zeros(static_cast<size_t>(pad), '\0');
    SLED_RETURN_IF_ERROR(
        kernel.Write(process, fd, std::span<const char>(zeros.data(), zeros.size())));
  }
  return kernel.Close(process, fd);
}

Result<FitsHeader> FitsReadHeader(SimKernel& kernel, Process& process, int fd) {
  SLED_RETURN_IF_ERROR(kernel.Lseek(process, fd, 0, Whence::kSet));
  std::string bytes;
  while (true) {
    std::string block(static_cast<size_t>(kFitsBlock), '\0');
    SLED_ASSIGN_OR_RETURN(int64_t n,
                          kernel.Read(process, fd, std::span<char>(block.data(), block.size())));
    if (n < kFitsBlock) {
      return Err::kInval;  // truncated header
    }
    bytes += block;
    auto parsed = FitsParseHeader(bytes);
    if (parsed.ok()) {
      return parsed;
    }
    if (bytes.size() > static_cast<size_t>(64 * kFitsBlock)) {
      return Err::kInval;  // runaway header
    }
  }
}

Result<FitsImage> FitsReadImage(SimKernel& kernel, Process& process, std::string_view path) {
  SLED_ASSIGN_OR_RETURN(int fd, kernel.Open(process, path));
  SLED_ASSIGN_OR_RETURN(FitsHeader header, FitsReadHeader(kernel, process, fd));
  FitsImage image;
  image.header = header;
  image.pixels.reserve(static_cast<size_t>(header.element_count()));
  SLED_RETURN_IF_ERROR(kernel.Lseek(process, fd, header.data_offset, Whence::kSet));
  const int64_t elem = header.element_size();
  std::vector<char> buf(static_cast<size_t>(64 * kKiB));
  int64_t remaining = header.data_bytes();
  std::string carry;
  while (remaining > 0) {
    const int64_t want = std::min<int64_t>(static_cast<int64_t>(buf.size()), remaining);
    SLED_ASSIGN_OR_RETURN(
        int64_t n, kernel.Read(process, fd, std::span<char>(buf.data(), static_cast<size_t>(want))));
    if (n <= 0) {
      // Error path: fd cleanup is best-effort; the original error is the story.
      (void)kernel.Close(process, fd);
      return Err::kInval;
    }
    carry.append(buf.data(), static_cast<size_t>(n));
    size_t consumed = 0;
    while (carry.size() - consumed >= static_cast<size_t>(elem)) {
      image.pixels.push_back(FitsDecodePixel(carry.data() + consumed, header.bitpix));
      consumed += static_cast<size_t>(elem);
    }
    carry.erase(0, consumed);
    remaining -= n;
  }
  SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
  if (image.pixels.size() != static_cast<size_t>(header.element_count())) {
    return Err::kInval;
  }
  return image;
}

}  // namespace sled
