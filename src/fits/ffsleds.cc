#include "src/fits/ffsleds.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "src/sleds/c_api.h"

namespace sled {

Result<std::unique_ptr<FfPicker>> FfPicker::Create(SimKernel& kernel, Process& process, int fd,
                                                   const FitsHeader& header,
                                                   int64_t preferred_elements) {
  if (preferred_elements <= 0 || header.element_size() <= 0) {
    return Err::kInval;
  }
  PickerOptions options;
  options.element_size = header.element_size();
  options.element_base = header.data_offset;
  options.preferred_chunk_bytes = preferred_elements * header.element_size();
  SLED_ASSIGN_OR_RETURN(std::unique_ptr<SledsPicker> picker,
                        SledsPicker::Create(kernel, process, fd, options));
  return std::unique_ptr<FfPicker>(new FfPicker(std::move(picker), header));
}

Result<FfPicker::ElementPick> FfPicker::NextRead() {
  const int64_t elem = header_.element_size();
  const int64_t data_begin = header_.data_offset;
  const int64_t data_end = data_begin + header_.data_bytes();
  while (true) {
    SLED_ASSIGN_OR_RETURN(SledsPicker::Pick pick, picker_->NextRead());
    if (pick.length == 0) {
      return ElementPick{0, 0};
    }
    // Clip to the data unit: header bytes and trailing block padding are not
    // elements.
    const int64_t lo = std::max(pick.offset, data_begin);
    const int64_t hi = std::min(pick.offset + pick.length, data_end);
    if (lo >= hi) {
      continue;  // pure header/padding pick
    }
    // Alignment is guaranteed by the picker's element mode; partial elements
    // can only appear where the clip cut at data_begin/data_end, which are
    // themselves on the element grid.
    ElementPick out;
    out.first_element = (lo - data_begin) / elem;
    out.count = (hi - lo) / elem;
    if (out.count == 0) {
      continue;
    }
    return out;
  }
}

namespace {

using FfKey = std::tuple<const SimKernel*, int, int>;

std::map<FfKey, std::unique_ptr<FfPicker>>& FfRegistry() {
  static std::map<FfKey, std::unique_ptr<FfPicker>> registry;
  return registry;
}

}  // namespace

long ffsleds_pick_init(SledsContext ctx, int fd, long preferred_elements) {
  if (ctx.kernel == nullptr || ctx.process == nullptr) {
    return -1;
  }
  auto header = FitsReadHeader(*ctx.kernel, *ctx.process, fd);
  if (!header.ok()) {
    return -1;
  }
  auto picker = FfPicker::Create(*ctx.kernel, *ctx.process, fd, header.value(),
                                 preferred_elements);
  if (!picker.ok()) {
    return -1;
  }
  FfRegistry()[{ctx.kernel, ctx.process->pid(), fd}] = std::move(picker).value();
  return preferred_elements;
}

int ffsleds_pick_next_read(SledsContext ctx, int fd, long* first_element, long* element_count) {
  if (ctx.kernel == nullptr || ctx.process == nullptr || first_element == nullptr ||
      element_count == nullptr) {
    return -1;
  }
  auto it = FfRegistry().find({ctx.kernel, ctx.process->pid(), fd});
  if (it == FfRegistry().end()) {
    return -1;
  }
  auto pick = it->second->NextRead();
  if (!pick.ok()) {
    return -1;
  }
  *first_element = pick->first_element;
  *element_count = pick->count;
  return 0;
}

int ffsleds_pick_finish(SledsContext ctx, int fd) {
  if (ctx.kernel == nullptr || ctx.process == nullptr) {
    return -1;
  }
  return FfRegistry().erase({ctx.kernel, ctx.process->pid(), fd}) > 0 ? 0 : -1;
}

}  // namespace sled
