// A compact FITS (Flexible Image Transport System) implementation — the
// astronomical image format the paper's LHEASOFT experiments process (§4.3:
// "The FITS format includes image metadata, as well as the data itself").
//
// Supported subset (enough for fimhisto / fimgbin):
//   * primary HDU with an N-dimensional image
//   * BITPIX 8, 16, 32 (big-endian two's-complement ints) and -32, -64
//     (big-endian IEEE floats)
//   * 80-character header cards in 2880-byte blocks, END-terminated
//   * data unit zero-padded to a 2880-byte multiple
//
// Pure encode/parse helpers are separated from kernel-level file I/O so they
// can be tested without a simulated machine.
#ifndef SLEDS_SRC_FITS_FITS_H_
#define SLEDS_SRC_FITS_FITS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

inline constexpr int64_t kFitsBlock = 2880;
inline constexpr int kFitsCardLen = 80;

struct FitsHeader {
  int bitpix = -32;
  std::vector<int64_t> naxis;  // dimension lengths, NAXIS1 first

  int64_t data_offset = 0;  // set by the parser: byte offset of the data unit

  int64_t element_size() const { return (bitpix < 0 ? -bitpix : bitpix) / 8; }
  int64_t element_count() const {
    int64_t n = naxis.empty() ? 0 : 1;
    for (int64_t d : naxis) {
      n *= d;
    }
    return n;
  }
  int64_t data_bytes() const { return element_count() * element_size(); }
  // Data bytes padded to the FITS blocking factor.
  int64_t padded_data_bytes() const {
    return ((data_bytes() + kFitsBlock - 1) / kFitsBlock) * kFitsBlock;
  }
};

// An in-memory image: pixel values as doubles regardless of on-disk BITPIX
// (the format conversion fimhisto performs, §5.3).
struct FitsImage {
  FitsHeader header;
  std::vector<double> pixels;  // row-major, size == header.element_count()
};

// ---- pure helpers ----

// Serialize a header (SIMPLE, BITPIX, NAXIS*, END) padded to a block.
std::string FitsEncodeHeader(const FitsHeader& header);

// Parse a header from the start of `bytes`; sets data_offset. Fails on
// malformed cards or missing END within `bytes`.
Result<FitsHeader> FitsParseHeader(std::string_view bytes);

// Big-endian pixel encode/decode for any supported BITPIX. `out` must have
// element_size bytes. Integer BITPIX values round and saturate.
void FitsEncodePixel(double value, int bitpix, char* out);
double FitsDecodePixel(const char* in, int bitpix);

// ---- kernel-level I/O (costed through the simulated OS) ----

// Write `image` to `path` (created/truncated).
Result<void> FitsWriteImage(SimKernel& kernel, Process& process, std::string_view path,
                            const FitsImage& image);

// Read and parse the header of an open FITS file (seeks to 0).
Result<FitsHeader> FitsReadHeader(SimKernel& kernel, Process& process, int fd);

// Read a whole image (header + pixels, converting to double).
Result<FitsImage> FitsReadImage(SimKernel& kernel, Process& process, std::string_view path);

}  // namespace sled

#endif  // SLEDS_SRC_FITS_FITS_H_
