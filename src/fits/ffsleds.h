// The ff* SLEDs layer for LHEASOFT (paper §5.3): "an additional library ...
// that allows applications to access SLEDs in units of data elements (usually
// floating point numbers), rather than bytes; the calls are the same, with ff
// prepended."
//
// FfPicker wraps SledsPicker with element alignment derived from a FITS
// header and converts byte picks into (element index, element count) advice
// restricted to the data unit.
#ifndef SLEDS_SRC_FITS_FFSLEDS_H_
#define SLEDS_SRC_FITS_FFSLEDS_H_

#include <memory>

#include "src/fits/fits.h"
#include "src/sleds/c_api.h"
#include "src/sleds/picker.h"

namespace sled {

class FfPicker {
 public:
  struct ElementPick {
    int64_t first_element = 0;
    int64_t count = 0;  // 0 => all elements offered
  };

  // `preferred_elements` bounds each pick's element count.
  static Result<std::unique_ptr<FfPicker>> Create(SimKernel& kernel, Process& process, int fd,
                                                  const FitsHeader& header,
                                                  int64_t preferred_elements);

  // Next advised run of whole elements (lowest retrieval latency first).
  // Header/padding bytes the byte-level picker offers are skipped.
  Result<ElementPick> NextRead();

  // Byte range of an element run (for the app's lseek/read).
  int64_t ByteOffsetOf(int64_t element_index) const {
    return header_.data_offset + element_index * header_.element_size();
  }

 private:
  FfPicker(std::unique_ptr<SledsPicker> picker, FitsHeader header)
      : picker_(std::move(picker)), header_(header) {}

  std::unique_ptr<SledsPicker> picker_;
  FitsHeader header_;
};

// C-style bindings mirroring the paper's ff-prefixed calls.
long ffsleds_pick_init(SledsContext ctx, int fd, long preferred_elements);
int ffsleds_pick_next_read(SledsContext ctx, int fd, long* first_element, long* element_count);
int ffsleds_pick_finish(SledsContext ctx, int fd);

}  // namespace sled

#endif  // SLEDS_SRC_FITS_FFSLEDS_H_
