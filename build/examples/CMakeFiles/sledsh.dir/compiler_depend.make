# Empty compiler generated dependencies file for sledsh.
# This may be replaced when dependencies are built.
