file(REMOVE_RECURSE
  "CMakeFiles/sledsh.dir/sledsh.cc.o"
  "CMakeFiles/sledsh.dir/sledsh.cc.o.d"
  "sledsh"
  "sledsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sledsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
