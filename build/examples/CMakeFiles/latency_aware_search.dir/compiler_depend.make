# Empty compiler generated dependencies file for latency_aware_search.
# This may be replaced when dependencies are built.
