file(REMOVE_RECURSE
  "CMakeFiles/latency_aware_search.dir/latency_aware_search.cc.o"
  "CMakeFiles/latency_aware_search.dir/latency_aware_search.cc.o.d"
  "latency_aware_search"
  "latency_aware_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_aware_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
