file(REMOVE_RECURSE
  "CMakeFiles/hsm_explorer.dir/hsm_explorer.cc.o"
  "CMakeFiles/hsm_explorer.dir/hsm_explorer.cc.o.d"
  "hsm_explorer"
  "hsm_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsm_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
