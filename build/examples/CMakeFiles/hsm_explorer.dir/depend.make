# Empty dependencies file for hsm_explorer.
# This may be replaced when dependencies are built.
