# Empty dependencies file for astro_pipeline.
# This may be replaced when dependencies are built.
