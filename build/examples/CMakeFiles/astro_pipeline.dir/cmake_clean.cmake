file(REMOVE_RECURSE
  "CMakeFiles/astro_pipeline.dir/astro_pipeline.cc.o"
  "CMakeFiles/astro_pipeline.dir/astro_pipeline.cc.o.d"
  "astro_pipeline"
  "astro_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astro_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
