file(REMOVE_RECURSE
  "../bench/bench_fig14_fimhisto"
  "../bench/bench_fig14_fimhisto.pdb"
  "CMakeFiles/bench_fig14_fimhisto.dir/bench_fig14_fimhisto.cc.o"
  "CMakeFiles/bench_fig14_fimhisto.dir/bench_fig14_fimhisto.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_fimhisto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
