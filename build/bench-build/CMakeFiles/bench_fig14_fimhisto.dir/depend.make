# Empty dependencies file for bench_fig14_fimhisto.
# This may be replaced when dependencies are built.
