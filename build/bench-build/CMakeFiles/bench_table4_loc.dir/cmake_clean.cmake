file(REMOVE_RECURSE
  "../bench/bench_table4_loc"
  "../bench/bench_table4_loc.pdb"
  "CMakeFiles/bench_table4_loc.dir/bench_table4_loc.cc.o"
  "CMakeFiles/bench_table4_loc.dir/bench_table4_loc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
