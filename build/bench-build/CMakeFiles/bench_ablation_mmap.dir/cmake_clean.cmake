file(REMOVE_RECURSE
  "../bench/bench_ablation_mmap"
  "../bench/bench_ablation_mmap.pdb"
  "CMakeFiles/bench_ablation_mmap.dir/bench_ablation_mmap.cc.o"
  "CMakeFiles/bench_ablation_mmap.dir/bench_ablation_mmap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
