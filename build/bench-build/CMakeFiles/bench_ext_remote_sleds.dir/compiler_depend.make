# Empty compiler generated dependencies file for bench_ext_remote_sleds.
# This may be replaced when dependencies are built.
