file(REMOVE_RECURSE
  "../bench/bench_ext_remote_sleds"
  "../bench/bench_ext_remote_sleds.pdb"
  "CMakeFiles/bench_ext_remote_sleds.dir/bench_ext_remote_sleds.cc.o"
  "CMakeFiles/bench_ext_remote_sleds.dir/bench_ext_remote_sleds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_remote_sleds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
