# Empty dependencies file for bench_fig10_grep_all_cdrom.
# This may be replaced when dependencies are built.
