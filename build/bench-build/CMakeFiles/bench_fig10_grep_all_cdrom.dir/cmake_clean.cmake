file(REMOVE_RECURSE
  "../bench/bench_fig10_grep_all_cdrom"
  "../bench/bench_fig10_grep_all_cdrom.pdb"
  "CMakeFiles/bench_fig10_grep_all_cdrom.dir/bench_fig10_grep_all_cdrom.cc.o"
  "CMakeFiles/bench_fig10_grep_all_cdrom.dir/bench_fig10_grep_all_cdrom.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_grep_all_cdrom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
