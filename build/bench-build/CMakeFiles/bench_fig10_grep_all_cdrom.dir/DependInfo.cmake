
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_grep_all_cdrom.cc" "bench-build/CMakeFiles/bench_fig10_grep_all_cdrom.dir/bench_fig10_grep_all_cdrom.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig10_grep_all_cdrom.dir/bench_fig10_grep_all_cdrom.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/sled_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/sled_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sled_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fits/CMakeFiles/sled_fits.dir/DependInfo.cmake"
  "/root/repo/build/src/sleds/CMakeFiles/sled_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/sled_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/sled_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/sled_device.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sled_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sled_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
