# Empty dependencies file for bench_ext_trace_replay.
# This may be replaced when dependencies are built.
