file(REMOVE_RECURSE
  "../bench/bench_ext_trace_replay"
  "../bench/bench_ext_trace_replay.pdb"
  "CMakeFiles/bench_ext_trace_replay.dir/bench_ext_trace_replay.cc.o"
  "CMakeFiles/bench_ext_trace_replay.dir/bench_ext_trace_replay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
