# Empty compiler generated dependencies file for bench_fig03_lru_passes.
# This may be replaced when dependencies are built.
