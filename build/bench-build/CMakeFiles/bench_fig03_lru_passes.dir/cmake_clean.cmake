file(REMOVE_RECURSE
  "../bench/bench_fig03_lru_passes"
  "../bench/bench_fig03_lru_passes.pdb"
  "CMakeFiles/bench_fig03_lru_passes.dir/bench_fig03_lru_passes.cc.o"
  "CMakeFiles/bench_fig03_lru_passes.dir/bench_fig03_lru_passes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_lru_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
