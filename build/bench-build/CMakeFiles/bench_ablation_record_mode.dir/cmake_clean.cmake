file(REMOVE_RECURSE
  "../bench/bench_ablation_record_mode"
  "../bench/bench_ablation_record_mode.pdb"
  "CMakeFiles/bench_ablation_record_mode.dir/bench_ablation_record_mode.cc.o"
  "CMakeFiles/bench_ablation_record_mode.dir/bench_ablation_record_mode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_record_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
