file(REMOVE_RECURSE
  "../bench/bench_ablation_readahead"
  "../bench/bench_ablation_readahead.pdb"
  "CMakeFiles/bench_ablation_readahead.dir/bench_ablation_readahead.cc.o"
  "CMakeFiles/bench_ablation_readahead.dir/bench_ablation_readahead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_readahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
