file(REMOVE_RECURSE
  "../bench/bench_ablation_lock"
  "../bench/bench_ablation_lock.pdb"
  "CMakeFiles/bench_ablation_lock.dir/bench_ablation_lock.cc.o"
  "CMakeFiles/bench_ablation_lock.dir/bench_ablation_lock.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
