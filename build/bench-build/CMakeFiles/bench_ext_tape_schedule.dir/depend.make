# Empty dependencies file for bench_ext_tape_schedule.
# This may be replaced when dependencies are built.
