file(REMOVE_RECURSE
  "../bench/bench_ext_tape_schedule"
  "../bench/bench_ext_tape_schedule.pdb"
  "CMakeFiles/bench_ext_tape_schedule.dir/bench_ext_tape_schedule.cc.o"
  "CMakeFiles/bench_ext_tape_schedule.dir/bench_ext_tape_schedule.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tape_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
