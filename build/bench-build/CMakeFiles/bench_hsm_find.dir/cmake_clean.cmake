file(REMOVE_RECURSE
  "../bench/bench_hsm_find"
  "../bench/bench_hsm_find.pdb"
  "CMakeFiles/bench_hsm_find.dir/bench_hsm_find.cc.o"
  "CMakeFiles/bench_hsm_find.dir/bench_hsm_find.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hsm_find.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
