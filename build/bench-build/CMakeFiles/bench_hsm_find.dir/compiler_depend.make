# Empty compiler generated dependencies file for bench_hsm_find.
# This may be replaced when dependencies are built.
