file(REMOVE_RECURSE
  "CMakeFiles/sled_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/sled_bench_util.dir/bench_util.cc.o.d"
  "libsled_bench_util.a"
  "libsled_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sled_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
