file(REMOVE_RECURSE
  "libsled_bench_util.a"
)
