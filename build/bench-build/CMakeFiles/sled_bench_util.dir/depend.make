# Empty dependencies file for sled_bench_util.
# This may be replaced when dependencies are built.
