# Empty dependencies file for bench_fig09_wc_cdrom_faults.
# This may be replaced when dependencies are built.
