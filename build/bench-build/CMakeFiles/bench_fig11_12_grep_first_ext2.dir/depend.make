# Empty dependencies file for bench_fig11_12_grep_first_ext2.
# This may be replaced when dependencies are built.
