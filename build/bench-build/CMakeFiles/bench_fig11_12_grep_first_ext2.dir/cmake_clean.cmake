file(REMOVE_RECURSE
  "../bench/bench_fig11_12_grep_first_ext2"
  "../bench/bench_fig11_12_grep_first_ext2.pdb"
  "CMakeFiles/bench_fig11_12_grep_first_ext2.dir/bench_fig11_12_grep_first_ext2.cc.o"
  "CMakeFiles/bench_fig11_12_grep_first_ext2.dir/bench_fig11_12_grep_first_ext2.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_12_grep_first_ext2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
