# Empty compiler generated dependencies file for bench_ablation_fragmentation.
# This may be replaced when dependencies are built.
