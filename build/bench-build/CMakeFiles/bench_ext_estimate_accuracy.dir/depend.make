# Empty dependencies file for bench_ext_estimate_accuracy.
# This may be replaced when dependencies are built.
