file(REMOVE_RECURSE
  "../bench/bench_ext_estimate_accuracy"
  "../bench/bench_ext_estimate_accuracy.pdb"
  "CMakeFiles/bench_ext_estimate_accuracy.dir/bench_ext_estimate_accuracy.cc.o"
  "CMakeFiles/bench_ext_estimate_accuracy.dir/bench_ext_estimate_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_estimate_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
