file(REMOVE_RECURSE
  "../bench/bench_fig07_08_wc_nfs"
  "../bench/bench_fig07_08_wc_nfs.pdb"
  "CMakeFiles/bench_fig07_08_wc_nfs.dir/bench_fig07_08_wc_nfs.cc.o"
  "CMakeFiles/bench_fig07_08_wc_nfs.dir/bench_fig07_08_wc_nfs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_08_wc_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
