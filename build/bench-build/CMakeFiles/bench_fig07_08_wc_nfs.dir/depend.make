# Empty dependencies file for bench_fig07_08_wc_nfs.
# This may be replaced when dependencies are built.
