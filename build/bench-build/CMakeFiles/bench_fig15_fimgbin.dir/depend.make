# Empty dependencies file for bench_fig15_fimgbin.
# This may be replaced when dependencies are built.
