file(REMOVE_RECURSE
  "../bench/bench_fig15_fimgbin"
  "../bench/bench_fig15_fimgbin.pdb"
  "CMakeFiles/bench_fig15_fimgbin.dir/bench_fig15_fimgbin.cc.o"
  "CMakeFiles/bench_fig15_fimgbin.dir/bench_fig15_fimgbin.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_fimgbin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
