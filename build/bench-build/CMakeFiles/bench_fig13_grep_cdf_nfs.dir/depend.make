# Empty dependencies file for bench_fig13_grep_cdf_nfs.
# This may be replaced when dependencies are built.
