file(REMOVE_RECURSE
  "../bench/bench_fig13_grep_cdf_nfs"
  "../bench/bench_fig13_grep_cdf_nfs.pdb"
  "CMakeFiles/bench_fig13_grep_cdf_nfs.dir/bench_fig13_grep_cdf_nfs.cc.o"
  "CMakeFiles/bench_fig13_grep_cdf_nfs.dir/bench_fig13_grep_cdf_nfs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_grep_cdf_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
