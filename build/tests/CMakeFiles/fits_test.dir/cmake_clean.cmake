file(REMOVE_RECURSE
  "CMakeFiles/fits_test.dir/fits_test.cc.o"
  "CMakeFiles/fits_test.dir/fits_test.cc.o.d"
  "fits_test"
  "fits_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
