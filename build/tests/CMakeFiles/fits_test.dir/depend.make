# Empty dependencies file for fits_test.
# This may be replaced when dependencies are built.
