# Empty compiler generated dependencies file for picker_test.
# This may be replaced when dependencies are built.
