file(REMOVE_RECURSE
  "CMakeFiles/picker_test.dir/picker_test.cc.o"
  "CMakeFiles/picker_test.dir/picker_test.cc.o.d"
  "picker_test"
  "picker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
