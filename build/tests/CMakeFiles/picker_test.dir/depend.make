# Empty dependencies file for picker_test.
# This may be replaced when dependencies are built.
