# Empty compiler generated dependencies file for tape_schedule_test.
# This may be replaced when dependencies are built.
