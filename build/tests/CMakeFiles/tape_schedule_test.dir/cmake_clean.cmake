file(REMOVE_RECURSE
  "CMakeFiles/tape_schedule_test.dir/tape_schedule_test.cc.o"
  "CMakeFiles/tape_schedule_test.dir/tape_schedule_test.cc.o.d"
  "tape_schedule_test"
  "tape_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tape_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
