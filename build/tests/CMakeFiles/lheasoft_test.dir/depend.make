# Empty dependencies file for lheasoft_test.
# This may be replaced when dependencies are built.
