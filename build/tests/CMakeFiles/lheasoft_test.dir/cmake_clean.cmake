file(REMOVE_RECURSE
  "CMakeFiles/lheasoft_test.dir/lheasoft_test.cc.o"
  "CMakeFiles/lheasoft_test.dir/lheasoft_test.cc.o.d"
  "lheasoft_test"
  "lheasoft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lheasoft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
