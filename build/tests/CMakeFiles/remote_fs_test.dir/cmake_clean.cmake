file(REMOVE_RECURSE
  "CMakeFiles/remote_fs_test.dir/remote_fs_test.cc.o"
  "CMakeFiles/remote_fs_test.dir/remote_fs_test.cc.o.d"
  "remote_fs_test"
  "remote_fs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
