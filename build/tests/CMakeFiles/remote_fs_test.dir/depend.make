# Empty dependencies file for remote_fs_test.
# This may be replaced when dependencies are built.
