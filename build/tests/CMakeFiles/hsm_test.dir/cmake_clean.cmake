file(REMOVE_RECURSE
  "CMakeFiles/hsm_test.dir/hsm_test.cc.o"
  "CMakeFiles/hsm_test.dir/hsm_test.cc.o.d"
  "hsm_test"
  "hsm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
