# Empty compiler generated dependencies file for sled_kernel.
# This may be replaced when dependencies are built.
