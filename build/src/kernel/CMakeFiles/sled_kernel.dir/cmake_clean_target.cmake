file(REMOVE_RECURSE
  "libsled_kernel.a"
)
