file(REMOVE_RECURSE
  "CMakeFiles/sled_kernel.dir/sim_kernel.cc.o"
  "CMakeFiles/sled_kernel.dir/sim_kernel.cc.o.d"
  "CMakeFiles/sled_kernel.dir/sleds_table.cc.o"
  "CMakeFiles/sled_kernel.dir/sleds_table.cc.o.d"
  "libsled_kernel.a"
  "libsled_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sled_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
