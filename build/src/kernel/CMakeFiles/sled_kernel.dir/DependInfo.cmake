
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/sim_kernel.cc" "src/kernel/CMakeFiles/sled_kernel.dir/sim_kernel.cc.o" "gcc" "src/kernel/CMakeFiles/sled_kernel.dir/sim_kernel.cc.o.d"
  "/root/repo/src/kernel/sleds_table.cc" "src/kernel/CMakeFiles/sled_kernel.dir/sleds_table.cc.o" "gcc" "src/kernel/CMakeFiles/sled_kernel.dir/sleds_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sled_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/sled_device.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sled_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/sled_fs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
