file(REMOVE_RECURSE
  "libsled_cache.a"
)
