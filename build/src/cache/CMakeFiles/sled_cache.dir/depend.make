# Empty dependencies file for sled_cache.
# This may be replaced when dependencies are built.
