file(REMOVE_RECURSE
  "CMakeFiles/sled_cache.dir/page_cache.cc.o"
  "CMakeFiles/sled_cache.dir/page_cache.cc.o.d"
  "libsled_cache.a"
  "libsled_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sled_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
