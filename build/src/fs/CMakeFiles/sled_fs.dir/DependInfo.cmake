
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/extent_allocator.cc" "src/fs/CMakeFiles/sled_fs.dir/extent_allocator.cc.o" "gcc" "src/fs/CMakeFiles/sled_fs.dir/extent_allocator.cc.o.d"
  "/root/repo/src/fs/extent_file_system.cc" "src/fs/CMakeFiles/sled_fs.dir/extent_file_system.cc.o" "gcc" "src/fs/CMakeFiles/sled_fs.dir/extent_file_system.cc.o.d"
  "/root/repo/src/fs/filesystem.cc" "src/fs/CMakeFiles/sled_fs.dir/filesystem.cc.o" "gcc" "src/fs/CMakeFiles/sled_fs.dir/filesystem.cc.o.d"
  "/root/repo/src/fs/hsm_fs.cc" "src/fs/CMakeFiles/sled_fs.dir/hsm_fs.cc.o" "gcc" "src/fs/CMakeFiles/sled_fs.dir/hsm_fs.cc.o.d"
  "/root/repo/src/fs/remote_fs.cc" "src/fs/CMakeFiles/sled_fs.dir/remote_fs.cc.o" "gcc" "src/fs/CMakeFiles/sled_fs.dir/remote_fs.cc.o.d"
  "/root/repo/src/fs/vfs.cc" "src/fs/CMakeFiles/sled_fs.dir/vfs.cc.o" "gcc" "src/fs/CMakeFiles/sled_fs.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sled_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/sled_device.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sled_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
