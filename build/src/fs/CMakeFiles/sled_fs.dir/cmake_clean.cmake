file(REMOVE_RECURSE
  "CMakeFiles/sled_fs.dir/extent_allocator.cc.o"
  "CMakeFiles/sled_fs.dir/extent_allocator.cc.o.d"
  "CMakeFiles/sled_fs.dir/extent_file_system.cc.o"
  "CMakeFiles/sled_fs.dir/extent_file_system.cc.o.d"
  "CMakeFiles/sled_fs.dir/filesystem.cc.o"
  "CMakeFiles/sled_fs.dir/filesystem.cc.o.d"
  "CMakeFiles/sled_fs.dir/hsm_fs.cc.o"
  "CMakeFiles/sled_fs.dir/hsm_fs.cc.o.d"
  "CMakeFiles/sled_fs.dir/remote_fs.cc.o"
  "CMakeFiles/sled_fs.dir/remote_fs.cc.o.d"
  "CMakeFiles/sled_fs.dir/vfs.cc.o"
  "CMakeFiles/sled_fs.dir/vfs.cc.o.d"
  "libsled_fs.a"
  "libsled_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sled_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
