file(REMOVE_RECURSE
  "libsled_fs.a"
)
