# Empty compiler generated dependencies file for sled_fs.
# This may be replaced when dependencies are built.
