file(REMOVE_RECURSE
  "libsled_workload.a"
)
