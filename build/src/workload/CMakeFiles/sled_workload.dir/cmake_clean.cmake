file(REMOVE_RECURSE
  "CMakeFiles/sled_workload.dir/calibrate.cc.o"
  "CMakeFiles/sled_workload.dir/calibrate.cc.o.d"
  "CMakeFiles/sled_workload.dir/experiment.cc.o"
  "CMakeFiles/sled_workload.dir/experiment.cc.o.d"
  "CMakeFiles/sled_workload.dir/fits_gen.cc.o"
  "CMakeFiles/sled_workload.dir/fits_gen.cc.o.d"
  "CMakeFiles/sled_workload.dir/shell.cc.o"
  "CMakeFiles/sled_workload.dir/shell.cc.o.d"
  "CMakeFiles/sled_workload.dir/testbed.cc.o"
  "CMakeFiles/sled_workload.dir/testbed.cc.o.d"
  "CMakeFiles/sled_workload.dir/text_gen.cc.o"
  "CMakeFiles/sled_workload.dir/text_gen.cc.o.d"
  "CMakeFiles/sled_workload.dir/trace.cc.o"
  "CMakeFiles/sled_workload.dir/trace.cc.o.d"
  "libsled_workload.a"
  "libsled_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sled_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
