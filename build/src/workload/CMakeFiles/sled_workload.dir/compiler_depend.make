# Empty compiler generated dependencies file for sled_workload.
# This may be replaced when dependencies are built.
