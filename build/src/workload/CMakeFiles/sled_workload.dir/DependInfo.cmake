
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/calibrate.cc" "src/workload/CMakeFiles/sled_workload.dir/calibrate.cc.o" "gcc" "src/workload/CMakeFiles/sled_workload.dir/calibrate.cc.o.d"
  "/root/repo/src/workload/experiment.cc" "src/workload/CMakeFiles/sled_workload.dir/experiment.cc.o" "gcc" "src/workload/CMakeFiles/sled_workload.dir/experiment.cc.o.d"
  "/root/repo/src/workload/fits_gen.cc" "src/workload/CMakeFiles/sled_workload.dir/fits_gen.cc.o" "gcc" "src/workload/CMakeFiles/sled_workload.dir/fits_gen.cc.o.d"
  "/root/repo/src/workload/shell.cc" "src/workload/CMakeFiles/sled_workload.dir/shell.cc.o" "gcc" "src/workload/CMakeFiles/sled_workload.dir/shell.cc.o.d"
  "/root/repo/src/workload/testbed.cc" "src/workload/CMakeFiles/sled_workload.dir/testbed.cc.o" "gcc" "src/workload/CMakeFiles/sled_workload.dir/testbed.cc.o.d"
  "/root/repo/src/workload/text_gen.cc" "src/workload/CMakeFiles/sled_workload.dir/text_gen.cc.o" "gcc" "src/workload/CMakeFiles/sled_workload.dir/text_gen.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/sled_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/sled_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/sled_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/fits/CMakeFiles/sled_fits.dir/DependInfo.cmake"
  "/root/repo/build/src/sleds/CMakeFiles/sled_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/sled_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/sled_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/sled_device.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sled_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sled_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
