file(REMOVE_RECURSE
  "libsled_apps.a"
)
