# Empty compiler generated dependencies file for sled_apps.
# This may be replaced when dependencies are built.
