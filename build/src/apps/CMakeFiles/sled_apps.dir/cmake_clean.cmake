file(REMOVE_RECURSE
  "CMakeFiles/sled_apps.dir/file_info.cc.o"
  "CMakeFiles/sled_apps.dir/file_info.cc.o.d"
  "CMakeFiles/sled_apps.dir/fimgbin.cc.o"
  "CMakeFiles/sled_apps.dir/fimgbin.cc.o.d"
  "CMakeFiles/sled_apps.dir/fimhisto.cc.o"
  "CMakeFiles/sled_apps.dir/fimhisto.cc.o.d"
  "CMakeFiles/sled_apps.dir/find.cc.o"
  "CMakeFiles/sled_apps.dir/find.cc.o.d"
  "CMakeFiles/sled_apps.dir/fits_scan.cc.o"
  "CMakeFiles/sled_apps.dir/fits_scan.cc.o.d"
  "CMakeFiles/sled_apps.dir/grep.cc.o"
  "CMakeFiles/sled_apps.dir/grep.cc.o.d"
  "CMakeFiles/sled_apps.dir/wc.cc.o"
  "CMakeFiles/sled_apps.dir/wc.cc.o.d"
  "libsled_apps.a"
  "libsled_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sled_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
