file(REMOVE_RECURSE
  "CMakeFiles/sled_fits.dir/ffsleds.cc.o"
  "CMakeFiles/sled_fits.dir/ffsleds.cc.o.d"
  "CMakeFiles/sled_fits.dir/fits.cc.o"
  "CMakeFiles/sled_fits.dir/fits.cc.o.d"
  "libsled_fits.a"
  "libsled_fits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sled_fits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
