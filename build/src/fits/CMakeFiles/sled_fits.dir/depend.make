# Empty dependencies file for sled_fits.
# This may be replaced when dependencies are built.
