file(REMOVE_RECURSE
  "libsled_fits.a"
)
