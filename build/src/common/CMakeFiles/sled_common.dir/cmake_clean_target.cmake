file(REMOVE_RECURSE
  "libsled_common.a"
)
