# Empty compiler generated dependencies file for sled_common.
# This may be replaced when dependencies are built.
