file(REMOVE_RECURSE
  "CMakeFiles/sled_common.dir/ascii_plot.cc.o"
  "CMakeFiles/sled_common.dir/ascii_plot.cc.o.d"
  "CMakeFiles/sled_common.dir/log.cc.o"
  "CMakeFiles/sled_common.dir/log.cc.o.d"
  "CMakeFiles/sled_common.dir/result.cc.o"
  "CMakeFiles/sled_common.dir/result.cc.o.d"
  "CMakeFiles/sled_common.dir/sim_time.cc.o"
  "CMakeFiles/sled_common.dir/sim_time.cc.o.d"
  "CMakeFiles/sled_common.dir/stats.cc.o"
  "CMakeFiles/sled_common.dir/stats.cc.o.d"
  "libsled_common.a"
  "libsled_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sled_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
