file(REMOVE_RECURSE
  "libsled_core.a"
)
