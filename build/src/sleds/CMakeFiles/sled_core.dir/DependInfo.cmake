
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sleds/c_api.cc" "src/sleds/CMakeFiles/sled_core.dir/c_api.cc.o" "gcc" "src/sleds/CMakeFiles/sled_core.dir/c_api.cc.o.d"
  "/root/repo/src/sleds/delivery.cc" "src/sleds/CMakeFiles/sled_core.dir/delivery.cc.o" "gcc" "src/sleds/CMakeFiles/sled_core.dir/delivery.cc.o.d"
  "/root/repo/src/sleds/picker.cc" "src/sleds/CMakeFiles/sled_core.dir/picker.cc.o" "gcc" "src/sleds/CMakeFiles/sled_core.dir/picker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/sled_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/sled_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/sled_device.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sled_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sled_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
