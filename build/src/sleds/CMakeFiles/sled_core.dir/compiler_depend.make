# Empty compiler generated dependencies file for sled_core.
# This may be replaced when dependencies are built.
