file(REMOVE_RECURSE
  "CMakeFiles/sled_core.dir/c_api.cc.o"
  "CMakeFiles/sled_core.dir/c_api.cc.o.d"
  "CMakeFiles/sled_core.dir/delivery.cc.o"
  "CMakeFiles/sled_core.dir/delivery.cc.o.d"
  "CMakeFiles/sled_core.dir/picker.cc.o"
  "CMakeFiles/sled_core.dir/picker.cc.o.d"
  "libsled_core.a"
  "libsled_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sled_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
