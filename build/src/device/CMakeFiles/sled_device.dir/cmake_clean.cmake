file(REMOVE_RECURSE
  "CMakeFiles/sled_device.dir/cdrom_device.cc.o"
  "CMakeFiles/sled_device.dir/cdrom_device.cc.o.d"
  "CMakeFiles/sled_device.dir/device.cc.o"
  "CMakeFiles/sled_device.dir/device.cc.o.d"
  "CMakeFiles/sled_device.dir/disk_device.cc.o"
  "CMakeFiles/sled_device.dir/disk_device.cc.o.d"
  "CMakeFiles/sled_device.dir/tape_device.cc.o"
  "CMakeFiles/sled_device.dir/tape_device.cc.o.d"
  "CMakeFiles/sled_device.dir/tape_schedule.cc.o"
  "CMakeFiles/sled_device.dir/tape_schedule.cc.o.d"
  "libsled_device.a"
  "libsled_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sled_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
