# Empty compiler generated dependencies file for sled_device.
# This may be replaced when dependencies are built.
