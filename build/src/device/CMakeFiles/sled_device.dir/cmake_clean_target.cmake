file(REMOVE_RECURSE
  "libsled_device.a"
)
