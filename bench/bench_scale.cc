// Million-page scale benchmark for the frame-table page cache (DESIGN.md §9).
//
// Pits the frame-table PageCache against a faithful replica of the previous
// storage layout — std::unordered_map entries, a std::list recency ring, and
// std::map/std::set per-file residency indexes — on cache-wide workloads at
// production scale: a 1M-page cache shared by 100k files. Replacement
// decisions are bit-for-bit identical between the two layouts (asserted on a
// small differential prefix before timing), so every measured difference is
// pure storage-layout wall-clock cost.
//
// Wall-clock only: the simulated clock plays no part here.
//
// Environment knobs:
//   SLEDS_SCALE_PAGES    cache capacity in pages          (default 1048576)
//   SLEDS_SCALE_FILES    files sharing the cache          (default 100000)
//   SLEDS_SCALE_OPS      operations per timed workload    (default 2000000)
//   SLEDS_SCALE_REPEATS  best-of-N timing repeats         (default 3)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <list>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "src/cache/page_cache.h"
#include "src/common/log.h"
#include "src/common/rng.h"
#include "src/obs/observer.h"

namespace sled {
namespace {

// Keep the compiler from eliding a measured computation without linking
// google-benchmark into this binary.
template <typename T>
inline void Sink(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

// ---------------------------------------------------------------------------
// The previous storage layout, reproduced exactly: node-based containers for
// entries, recency, and the per-file residency index. Only the operations the
// workloads exercise are carried over; their behavior (victim order, stats)
// matches the frame table bit for bit.
class LegacyPageCache {
 public:
  explicit LegacyPageCache(PageCacheConfig config) : config_(config) {}

  bool Touch(PageKey key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return false;
    }
    ++stats_.hits;
    if (config_.policy == ReplacementPolicy::kLru) {
      order_.splice(order_.end(), order_, it->second.lru_it);
    } else {
      it->second.referenced = true;
    }
    return true;
  }

  std::optional<EvictedPage> Insert(PageKey key, bool dirty) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.dirty = it->second.dirty || dirty;
      if (dirty) {
        index_[key.file].dirty.insert(key.page);
      }
      if (config_.policy == ReplacementPolicy::kLru) {
        order_.splice(order_.end(), order_, it->second.lru_it);
      } else {
        it->second.referenced = true;
      }
      return std::nullopt;
    }
    std::optional<EvictedPage> evicted;
    if (static_cast<int64_t>(entries_.size()) >= config_.capacity_pages) {
      evicted = EvictOne();
    }
    order_.push_back(key);
    Entry entry;
    entry.lru_it = std::prev(order_.end());
    entry.dirty = dirty;
    entry.referenced = false;
    entries_.emplace(key, entry);
    IndexInsert(key.file, key.page);
    if (dirty) {
      index_[key.file].dirty.insert(key.page);
    }
    ++stats_.insertions;
    return evicted;
  }

  void MarkDirty(PageKey key) {
    auto it = entries_.find(key);
    SLED_CHECK(it != entries_.end(), "MarkDirty on non-resident page");
    it->second.dirty = true;
    index_[key.file].dirty.insert(key.page);
  }

  void MarkClean(PageKey key) {
    auto it = entries_.find(key);
    SLED_CHECK(it != entries_.end(), "MarkClean on non-resident page");
    it->second.dirty = false;
    index_[key.file].dirty.erase(key.page);
  }

  std::vector<PageKey> DirtyPagesOf(FileId file) const {
    std::vector<PageKey> dirty;
    auto fit = index_.find(file);
    if (fit == index_.end()) {
      return dirty;
    }
    dirty.reserve(fit->second.dirty.size());
    for (int64_t page : fit->second.dirty) {
      dirty.push_back({file, page});
    }
    return dirty;
  }

  std::optional<PageRun> NextResidentRun(FileId file, int64_t from) const {
    auto fit = index_.find(file);
    if (fit == index_.end()) {
      return std::nullopt;
    }
    const auto& runs = fit->second.runs;
    auto it = runs.upper_bound(from);
    if (it != runs.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second > from) {
        return PageRun{prev->first, prev->second};
      }
    }
    if (it == runs.end()) {
      return std::nullopt;
    }
    return PageRun{it->first, it->second};
  }

  int64_t NextMissAfter(FileId file, int64_t page) const {
    auto fit = index_.find(file);
    if (fit == index_.end()) {
      return page;
    }
    const auto& runs = fit->second.runs;
    auto it = runs.upper_bound(page);
    if (it == runs.begin()) {
      return page;
    }
    --it;
    if (page >= it->first + it->second) {
      return page;
    }
    return it->first + it->second;
  }

  const PageCacheStats& stats() const { return stats_; }
  int64_t size_pages() const { return static_cast<int64_t>(entries_.size()); }

 private:
  struct Entry {
    std::list<PageKey>::iterator lru_it;
    bool dirty = false;
    bool referenced = false;
  };
  struct FileIndex {
    std::map<int64_t, int64_t> runs;  // first page -> run length
    std::set<int64_t> dirty;
  };

  EvictedPage EvictOne() {
    for (int sweep = 0; sweep < 3; ++sweep) {
      auto it = order_.begin();
      while (it != order_.end()) {
        auto entry_it = entries_.find(*it);
        if (config_.policy == ReplacementPolicy::kClock && entry_it->second.referenced) {
          entry_it->second.referenced = false;
          auto next = std::next(it);
          order_.splice(order_.end(), order_, it);
          entry_it->second.lru_it = std::prev(order_.end());
          it = next;
          continue;
        }
        const PageKey victim = *it;
        EvictedPage evicted{victim, entry_it->second.dirty};
        order_.erase(it);
        entries_.erase(entry_it);
        IndexRemove(victim.file, victim.page);
        ++stats_.evictions;
        if (evicted.dirty) {
          ++stats_.dirty_evictions;
        }
        return evicted;
      }
    }
    SLED_CHECK(false, "no evictable page");
    return {};
  }

  void IndexInsert(FileId file, int64_t page) {
    FileIndex& fi = index_[file];
    auto next = fi.runs.lower_bound(page);
    bool merge_left = false;
    auto prev = fi.runs.end();
    if (next != fi.runs.begin()) {
      prev = std::prev(next);
      merge_left = prev->first + prev->second == page;
    }
    const bool merge_right = next != fi.runs.end() && next->first == page + 1;
    if (merge_left && merge_right) {
      prev->second += 1 + next->second;
      fi.runs.erase(next);
    } else if (merge_left) {
      prev->second += 1;
    } else if (merge_right) {
      const int64_t count = next->second + 1;
      fi.runs.erase(next);
      fi.runs.emplace(page, count);
    } else {
      fi.runs.emplace(page, 1);
    }
  }

  void IndexRemove(FileId file, int64_t page) {
    auto fit = index_.find(file);
    FileIndex& fi = fit->second;
    auto it = fi.runs.upper_bound(page);
    --it;
    const int64_t first = it->first;
    const int64_t count = it->second;
    fi.runs.erase(it);
    if (page > first) {
      fi.runs.emplace(first, page - first);
    }
    if (page + 1 < first + count) {
      fi.runs.emplace(page + 1, first + count - page - 1);
    }
    fi.dirty.erase(page);
    if (fi.runs.empty()) {
      index_.erase(fit);
    }
  }

  PageCacheConfig config_;
  std::unordered_map<PageKey, Entry, PageKeyHash> entries_;
  std::unordered_map<FileId, FileIndex> index_;
  std::list<PageKey> order_;
  PageCacheStats stats_;
};

// ---------------------------------------------------------------------------

struct ScaleConfig {
  int64_t capacity_pages = 1 << 20;  // 1M pages = 4 GiB of 4 KiB pages
  int64_t files = 100000;
  int64_t ops = 2000000;
  int repeats = 3;

  static ScaleConfig FromEnv() {
    ScaleConfig c;
    if (const char* env = std::getenv("SLEDS_SCALE_PAGES")) {
      c.capacity_pages = std::max<int64_t>(1024, atoll(env));
    }
    if (const char* env = std::getenv("SLEDS_SCALE_FILES")) {
      c.files = std::max<int64_t>(1, atoll(env));
    }
    if (const char* env = std::getenv("SLEDS_SCALE_OPS")) {
      c.ops = std::max<int64_t>(1000, atoll(env));
    }
    if (const char* env = std::getenv("SLEDS_SCALE_REPEATS")) {
      c.repeats = std::max(1, atoi(env));
    }
    return c;
  }
};

struct MicroResult {
  double naive_us = 0;    // legacy node-based layout
  double indexed_us = 0;  // frame table
  double speedup() const { return indexed_us > 0 ? naive_us / indexed_us : 0; }
};

template <typename F>
double BestWallMicros(int iters, F&& f) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  return best;
}

// Striped residency fill: each file holds pages [0, 8) and [16, 24) of its
// page space (two runs per file, half dirty candidates), round-robin across
// files until the cache holds ~90% of capacity. Applies the identical
// sequence to both caches.
template <typename Cache>
void FillStriped(Cache& cache, const ScaleConfig& cfg) {
  const int64_t target = cfg.capacity_pages * 9 / 10;
  int64_t inserted = 0;
  for (int64_t round = 0; inserted < target; ++round) {
    for (int64_t f = 0; f < cfg.files && inserted < target; ++f) {
      const int64_t page = (round / 8) * 16 + (round % 8);
      cache.Insert({static_cast<FileId>(f + 1), page}, false);
      ++inserted;
    }
  }
}

// The per-op sequences are identical across layouts: deterministic Rng keyed
// by workload, drawn once into flat key streams at construction so the timed
// loops measure cache operations, not random-number generation (shared rng
// overhead in the loop would compress the reported ratios).
struct Workloads {
  ScaleConfig cfg;
  std::vector<PageKey> touch_keys;
  std::vector<PageKey> query_keys;  // page field holds the probe offset
  std::vector<FileId> wb_files;

  explicit Workloads(const ScaleConfig& config) : cfg(config) {
    Rng touch_rng(101);
    const int64_t rounds = cfg.capacity_pages * 9 / 10 / cfg.files;
    touch_keys.reserve(static_cast<size_t>(cfg.ops));
    for (int64_t i = 0; i < cfg.ops; ++i) {
      const FileId f = static_cast<FileId>(touch_rng.Uniform(1, cfg.files));
      const int64_t r = touch_rng.Uniform(0, std::max<int64_t>(rounds - 1, 0));
      touch_keys.push_back({f, (r / 8) * 16 + (r % 8)});
    }
    Rng query_rng(303);
    query_keys.reserve(static_cast<size_t>(cfg.ops));
    for (int64_t i = 0; i < cfg.ops; ++i) {
      query_keys.push_back({static_cast<FileId>(query_rng.Uniform(1, cfg.files)),
                            query_rng.Uniform(0, 31)});
    }
    Rng wb_rng(505);
    wb_files.reserve(static_cast<size_t>(cfg.ops / 8));
    for (int64_t i = 0; i < cfg.ops / 8; ++i) {
      wb_files.push_back(static_cast<FileId>(wb_rng.Uniform(1, cfg.files)));
    }
  }

  // Random touches of (mostly) resident pages across all files.
  template <typename Cache>
  int64_t TouchHits(Cache& cache) const {
    int64_t hits = 0;
    for (const PageKey& key : touch_keys) {
      hits += cache.Touch(key) ? 1 : 0;
    }
    return hits;
  }

  // Sequential insert churn at full capacity: every insert past the fill
  // evicts the LRU page (the Figure-3 "cache full" regime).
  template <typename Cache>
  int64_t InsertEvict(Cache& cache) const {
    int64_t dirty_evictions = 0;
    for (int64_t i = 0; i < cfg.ops; ++i) {
      const FileId f = static_cast<FileId>(i % cfg.files + 1);
      const int64_t page = 1000000 + i / cfg.files;  // fresh page space
      auto evicted = cache.Insert({f, page}, (i & 7) == 0);
      if (evicted.has_value() && evicted->dirty) {
        ++dirty_evictions;
      }
    }
    return dirty_evictions;
  }

  // SLED-scan style queries over the striped residency index.
  template <typename Cache>
  int64_t RunQueries(Cache& cache) const {
    int64_t acc = 0;
    for (const PageKey& key : query_keys) {
      if (const auto run = cache.NextResidentRun(key.file, key.page); run.has_value()) {
        acc += run->first + run->count;
      }
      acc += cache.NextMissAfter(key.file, key.page);
    }
    return acc;
  }

  // Fsync-style cycle: dirty a few pages of a file, collect its dirty list,
  // write it back clean.
  template <typename Cache>
  int64_t DirtyWriteback(Cache& cache) const {
    int64_t flushed = 0;
    for (const FileId f : wb_files) {
      for (int64_t p : {0, 2, 4, 16}) {
        if (cache.Touch({f, p})) {
          cache.MarkDirty({f, p});
        }
      }
      for (const PageKey& key : cache.DirtyPagesOf(f)) {
        cache.MarkClean(key);
        ++flushed;
      }
    }
    return flushed;
  }
};

// Differential prefix: both layouts run the same randomized op mix on a small
// cache; victim order, stats, and per-op results must agree exactly.
void AssertIdenticalBehavior() {
  const PageCacheConfig cfg{.capacity_pages = 1024, .policy = ReplacementPolicy::kLru};
  PageCache frame(cfg);
  LegacyPageCache legacy(cfg);
  Rng rng(42);
  for (int64_t i = 0; i < 200000; ++i) {
    const FileId f = static_cast<FileId>(rng.Uniform(1, 64));
    const int64_t page = rng.Uniform(0, 255);
    switch (rng.Uniform(0, 3)) {
      case 0: {
        SLED_CHECK(frame.Touch({f, page}) == legacy.Touch({f, page}), "Touch mismatch");
        break;
      }
      case 1:
      case 2: {
        const bool dirty = rng.Uniform(0, 1) == 1;
        auto a = frame.Insert({f, page}, dirty);
        auto b = legacy.Insert({f, page}, dirty);
        SLED_CHECK(a == b, "eviction mismatch at op %lld", static_cast<long long>(i));
        break;
      }
      case 3: {
        const auto a = frame.NextResidentRun(f, page);
        const auto b = legacy.NextResidentRun(f, page);
        SLED_CHECK(a == b, "run query mismatch");
        break;
      }
    }
  }
  const PageCacheStats& fs = frame.stats();
  const PageCacheStats& ls = legacy.stats();
  SLED_CHECK(fs.hits == ls.hits && fs.misses == ls.misses && fs.insertions == ls.insertions &&
                 fs.evictions == ls.evictions && fs.dirty_evictions == ls.dirty_evictions,
             "stats diverged");
  SLED_CHECK(frame.ValidateIndex(), "frame-table index invalid");
}

void RunScaleSuite() {
  const ScaleConfig cfg = ScaleConfig::FromEnv();
  std::fprintf(stderr, "bench_scale: %lld pages, %lld files, %lld ops, best of %d\n",
               static_cast<long long>(cfg.capacity_pages), static_cast<long long>(cfg.files),
               static_cast<long long>(cfg.ops), cfg.repeats);
  AssertIdenticalBehavior();
  std::fprintf(stderr, "  differential prefix ok (identical victim order)\n");

  const PageCacheConfig cache_cfg{.capacity_pages = cfg.capacity_pages,
                                  .policy = ReplacementPolicy::kLru};
  const Workloads w(cfg);

  // Touch / query / writeback workloads share one striped fill per layout;
  // the timed sections do not change residency (writeback restores
  // cleanliness), so repeats see identical state.
  PageCache frame(cache_cfg);
  LegacyPageCache legacy(cache_cfg);
  FillStriped(frame, cfg);
  FillStriped(legacy, cfg);
  SLED_CHECK(frame.size_pages() == legacy.size_pages(), "fill mismatch");
  std::fprintf(stderr, "  filled %lld pages per layout\n",
               static_cast<long long>(frame.size_pages()));

  MicroResult touch;
  touch.naive_us = BestWallMicros(cfg.repeats, [&] { Sink(w.TouchHits(legacy)); });
  touch.indexed_us = BestWallMicros(cfg.repeats, [&] { Sink(w.TouchHits(frame)); });
  std::fprintf(stderr, "  touch_hit done (%.2fx)\n", touch.speedup());

  MicroResult query;
  query.naive_us = BestWallMicros(cfg.repeats, [&] { Sink(w.RunQueries(legacy)); });
  query.indexed_us = BestWallMicros(cfg.repeats, [&] { Sink(w.RunQueries(frame)); });
  std::fprintf(stderr, "  run_query done (%.2fx)\n", query.speedup());

  MicroResult wb;
  wb.naive_us = BestWallMicros(cfg.repeats, [&] { Sink(w.DirtyWriteback(legacy)); });
  wb.indexed_us = BestWallMicros(cfg.repeats, [&] { Sink(w.DirtyWriteback(frame)); });
  std::fprintf(stderr, "  dirty_writeback done (%.2fx)\n", wb.speedup());

  // Insert/evict churns residency, so each repeat rebuilds a fresh cache;
  // only the churn itself is inside the timed window.
  MicroResult churn;
  {
    double best_naive = std::numeric_limits<double>::infinity();
    double best_frame = std::numeric_limits<double>::infinity();
    for (int i = 0; i < cfg.repeats; ++i) {
      LegacyPageCache lc(cache_cfg);
      FillStriped(lc, cfg);
      auto t0 = std::chrono::steady_clock::now();
      Sink(w.InsertEvict(lc));
      auto t1 = std::chrono::steady_clock::now();
      best_naive =
          std::min(best_naive, std::chrono::duration<double, std::micro>(t1 - t0).count());

      PageCache fc(cache_cfg);
      FillStriped(fc, cfg);
      t0 = std::chrono::steady_clock::now();
      Sink(w.InsertEvict(fc));
      t1 = std::chrono::steady_clock::now();
      best_frame =
          std::min(best_frame, std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    churn.naive_us = best_naive;
    churn.indexed_us = best_frame;
  }
  std::fprintf(stderr, "  insert_evict done (%.2fx)\n", churn.speedup());

  // Publish the frame-table occupancy through the observability gauges (the
  // figure benches keep their gauges section absent; this bench is where the
  // cache.* gauges are exercised end to end).
  SimClock clock;
  Observer obs(&clock, /*trace_capacity=*/16);
  obs.CacheGauges(frame.size_pages(), frame.capacity_pages(), frame.pinned_pages(),
                  frame.in_flight_pages(),
                  static_cast<int64_t>(frame.AllDirtyPages().size()),
                  frame.resident_file_count());

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"config\": {\"capacity_pages\": %lld, \"files\": %lld, \"ops\": %lld},\n"
      "  \"touch_hit\": {\"naive_us\": %.1f, \"indexed_us\": %.1f, \"speedup\": %.2f},\n"
      "  \"insert_evict\": {\"naive_us\": %.1f, \"indexed_us\": %.1f, \"speedup\": %.2f},\n"
      "  \"run_query\": {\"naive_us\": %.1f, \"indexed_us\": %.1f, \"speedup\": %.2f},\n"
      "  \"dirty_writeback\": {\"naive_us\": %.1f, \"indexed_us\": %.1f, \"speedup\": %.2f},\n"
      "  \"gauges\": {\"cache_size_pages\": %lld, \"cache_resident_files\": %lld,\n"
      "             \"cache_dirty_pages\": %lld}\n"
      "}",
      static_cast<long long>(cfg.capacity_pages), static_cast<long long>(cfg.files),
      static_cast<long long>(cfg.ops), touch.naive_us, touch.indexed_us, touch.speedup(),
      churn.naive_us, churn.indexed_us, churn.speedup(), query.naive_us, query.indexed_us,
      query.speedup(), wb.naive_us, wb.indexed_us, wb.speedup(),
      static_cast<long long>(obs.metrics().gauge("cache.size_pages")),
      static_cast<long long>(obs.metrics().gauge("cache.resident_files")),
      static_cast<long long>(obs.metrics().gauge("cache.dirty_pages")));
  PrintBenchMetrics("scale", json);
}

}  // namespace
}  // namespace sled

int main() {
  sled::RunScaleSuite();
  return 0;
}
