// Extension experiment: SLEDs on a hierarchical storage manager — the
// scenario the paper's introduction motivates ("gains may be much greater
// with HSM systems") but could not measure. A library of files is spread
// across staging disk, a mounted tape, and offline tapes; we compare:
//
//   1. find -latency pruning: restrict a search to files retrievable within
//      a bound, without touching tape (paper §4.3: "users may wish to ignore
//      all tape-resident data, or to read data from a tape currently mounted
//      on a drive, but ignore those that would require mounting a new tape").
//   2. grep -q across the library with and without SLEDs-guided ordering of
//      the file list (cheapest files first), the file-set analogue of
//      reordering.
#include <algorithm>
#include <cstdio>

#include "src/apps/find.h"
#include "src/apps/grep.h"
#include "src/common/units.h"
#include "src/sleds/delivery.h"
#include "src/workload/experiment.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

struct Library {
  Testbed tb;
  std::vector<std::string> paths;
  std::string needle_path;  // where the match lives (a tape-near file)
};

Library BuildLibrary() {
  Library lib;
  lib.tb = MakeHsmTestbed(/*seed=*/77);
  auto* hsm = dynamic_cast<HsmFs*>(lib.tb.kernel->vfs().FsById(lib.tb.data_fs_id));
  SLED_CHECK(hsm != nullptr, "hsm testbed has no HsmFs");
  Process& gen = lib.tb.kernel->CreateProcess("gen");
  Rng rng(77);

  // 12 files of 16 MB: 4 staged on disk, 8 migrated to tape.
  for (int i = 0; i < 12; ++i) {
    const std::string path = "/data/obs" + std::to_string(i) + ".txt";
    SLED_CHECK(GenerateTextFile(*lib.tb.kernel, gen, path, MiB(16), rng).ok(), "gen failed");
    lib.paths.push_back(path);
  }
  for (int i = 4; i < 12; ++i) {
    const InodeNum ino = lib.tb.kernel->vfs().Resolve(lib.paths[i]).value().ino;
    SLED_CHECK(hsm->Migrate(ino).ok(), "migrate failed");
  }
  // Put the needle in a migrated file, then touch that file's tape so it is
  // the mounted one ("tape-near").
  lib.needle_path = lib.paths[6];
  // Marker placement needs the file staged: recall, mark, re-migrate.
  {
    const InodeNum ino = lib.tb.kernel->vfs().Resolve(lib.needle_path).value().ino;
    SLED_CHECK(hsm->Recall(ino).ok(), "recall failed");
    SLED_CHECK(PlaceMarker(*lib.tb.kernel, gen, lib.needle_path, MiB(8)).ok(), "marker failed");
    SLED_CHECK(hsm->Migrate(ino).ok(), "re-migrate failed");
  }
  lib.tb.kernel->DropCaches();
  return lib;
}

int Main() {
  std::printf("==== HSM extension: find -latency pruning and SLEDs-ordered search ====\n\n");
  Library lib = BuildLibrary();
  SimKernel& kernel = *lib.tb.kernel;

  // --- Part 1: find -latency ---
  Process& finder = kernel.CreateProcess("find");
  FindOptions all;
  const FindResult everything = FindApp::Run(kernel, finder, "/data", all).value();
  FindOptions cheap;
  cheap.latency = ParseLatencyPredicate("-5").value();  // < 5 s: no robot work
  const FindResult fast = FindApp::Run(kernel, finder, "/data", cheap).value();
  FindOptions expensive;
  expensive.latency = ParseLatencyPredicate("+60").value();  // needs mount+locate
  const FindResult slow = FindApp::Run(kernel, finder, "/data", expensive).value();
  std::printf("find /data                      -> %zu files\n", everything.paths.size());
  std::printf("find /data -latency -5          -> %zu files (pruned %lld tape-resident)\n",
              fast.paths.size(), static_cast<long long>(fast.files_pruned_by_latency));
  std::printf("find /data -latency +60         -> %zu files (offline tapes only)\n\n",
              slow.paths.size());

  // --- Part 2: search the library for the needle ---
  auto search = [](Library& l, bool sleds_order) -> Duration {
    SimKernel& kernel = *l.tb.kernel;
    Process& p = kernel.CreateProcess(sleds_order ? "search-sleds" : "search");
    std::vector<std::string> order = l.paths;
    if (sleds_order) {
      // Steere-style file-set ordering by estimated delivery time: ask the
      // SLEDs of each file (metadata only, no data I/O) and sort.
      std::vector<std::pair<double, std::string>> keyed;
      for (const std::string& path : order) {
        const int fd = kernel.Open(p, path).value();
        const Duration est = TotalDeliveryTime(kernel, p, fd, AttackPlan::kBest).value();
        (void)kernel.Close(p, fd);
        keyed.emplace_back(est.ToSeconds(), path);
      }
      std::sort(keyed.begin(), keyed.end());
      order.clear();
      for (auto& [cost, path] : keyed) {
        order.push_back(path);
      }
    }
    const TimePoint t0 = kernel.clock().Now();
    for (const std::string& path : order) {
      GrepOptions options;
      options.quiet_first_match = true;
      options.use_sleds = sleds_order;
      auto r = GrepApp::Run(kernel, p, path, std::string(kGrepMarker), options);
      if (r.ok() && r->found) {
        break;
      }
    }
    return kernel.clock().Now() - t0;
  };

  // Warm state: the needle file's tape is offline; several disk files are
  // staged. Without SLEDs the walk order is directory order, recalling every
  // offline file it meets before the needle; with SLEDs ordering, all cheap
  // files are eliminated first and only then does the search pay for tape.
  const Duration with = search(lib, true);
  // Rebuild to reset HSM/tape state perturbed by the first search.
  lib = BuildLibrary();
  const Duration without = search(lib, false);
  std::printf("grep -q across library, SLEDs-ordered:    %10.1f s\n", with.ToSeconds());
  std::printf("grep -q across library, directory order:  %10.1f s\n", without.ToSeconds());
  std::printf("speedup: %.1fx (tape mounts avoided by ordering cheap files first)\n",
              without.ToSeconds() / std::max(with.ToSeconds(), 1e-9));
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
