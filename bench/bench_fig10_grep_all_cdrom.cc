// Reproduces paper Figure 10: grep (all matches) execution time on CD-ROM,
// with and without SLEDs, warm cache.
//
// Expected shape: small CPU overhead for small files (the record management
// and match buffering are pure CPU); above the cache size, a constant
// absolute gain of roughly cache-size / CD bandwidth (~15 s in the paper) as
// the SLEDs run serves the cached portion from memory.
#include "bench/bench_util.h"
#include "src/apps/grep.h"
#include "src/common/units.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

std::vector<int64_t> Fig10Sizes() {
  std::vector<int64_t> sizes;
  for (int mb = 24; mb <= 96; mb += 8) {
    sizes.push_back(MiB(mb));
  }
  return sizes;
}

int Main() {
  const BenchParams params = BenchParams::FromEnv(Fig10Sizes());
  const SweepResult sweep = RunFigureSweep(
      [](uint64_t seed) { return MakeUnixTestbed(StorageKind::kCdRom, seed); },
      [](Testbed& tb, int64_t size, Rng& rng) {
        Process& gen = tb.kernel->CreateProcess("master");
        SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/file.txt", size, rng).ok(),
                   "mastering failed");
        // A small, static set of matches (kilobytes out of megabytes),
        // scattered through the file before the disc is sealed.
        const int num_matches = 16;
        for (int i = 0; i < num_matches; ++i) {
          const int64_t where = rng.Uniform(0, size - kGenLineLen);
          SLED_CHECK(PlaceMarker(*tb.kernel, gen, "/data/file.txt", where).ok(),
                     "marker placement failed");
        }
        tb.FinishMastering();
        return std::function<void(SimKernel&, Process&, Rng&)>();
      },
      [](SimKernel& kernel, Process& p, bool use_sleds) {
        GrepOptions options;
        options.use_sleds = use_sleds;
        options.line_numbers = true;  // the expensive, reimplemented -n path
        auto r = GrepApp::Run(kernel, p, "/data/file.txt", std::string(kGrepMarker), options);
        SLED_CHECK(r.ok() && r->found, "grep failed");
      },
      params, /*seed_base=*/10000);
  PrintFigure("Figure 10", "Time for cdrom grep with all matches wo/w SLEDs",
              "Execution time (s)", sweep.time_points);
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
