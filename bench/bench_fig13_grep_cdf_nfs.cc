// Reproduces paper Figure 13: the cumulative distribution function of
// grep -q (one random match) execution time over NFS, 64 MB file, warm cache.
//
// Expected shape: with SLEDs most runs finish almost immediately (the match
// usually sits in the ~40 MB cached portion of the 64 MB file, and the SLEDs
// run looks there first), giving a CDF that jumps to ~0.6 near zero and has a
// tail for cache-miss runs. Without SLEDs the run time is spread widely —
// "grep without SLEDs gained essentially no benefit from the fact that a
// majority of the test file is cached."
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/apps/grep.h"
#include "src/common/units.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

std::vector<double> CollectRunTimes(bool use_sleds, int runs, uint64_t seed) {
  Testbed tb = MakeUnixTestbed(StorageKind::kNfs, seed);
  Process& gen = tb.kernel->CreateProcess("gen");
  Rng rng(seed * 977);
  const int64_t size = MiB(64);
  SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/file.txt", size, rng).ok(),
             "generation failed");
  tb.kernel->DropCaches();
  int64_t marker_offset = -1;

  auto one_run = [&]() -> double {
    Process& setup = tb.kernel->CreateProcess("setup");
    auto placed = MoveMarkerScrubbed(*tb.kernel, setup, "/data/file.txt", marker_offset,
                                     rng.Uniform(0, size - kGenLineLen), rng);
    SLED_CHECK(placed.ok(), "marker placement failed");
    marker_offset = placed.value();
    const RunStats stats = MeasureRun(*tb.kernel, [&](SimKernel& k, Process& p) {
      GrepOptions options;
      options.use_sleds = use_sleds;
      options.quiet_first_match = true;
      auto r = GrepApp::Run(k, p, "/data/file.txt", std::string(kGrepMarker), options);
      SLED_CHECK(r.ok() && r->found, "grep -q failed");
    });
    return stats.elapsed.ToSeconds();
  };
  (void)one_run();  // warm-up, discarded
  std::vector<double> times;
  times.reserve(static_cast<size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    times.push_back(one_run());
  }
  return times;
}

int Main() {
  int runs = 50;
  if (const char* env = std::getenv("SLEDS_BENCH_REPEATS")) {
    runs = std::max(4, atoi(env) * 4);
  }
  const Cdf with(CollectRunTimes(true, runs, 131));
  const Cdf without(CollectRunTimes(false, runs, 137));

  std::printf("\n==== Figure 13: CDF of nfs grep -q run time, 64 MB file, warm cache ====\n");
  std::printf("%-14s %14s %14s\n", "time (s)", "P(with<=t)", "P(without<=t)");
  const double t_max = std::max(with.max(), without.max());
  PlotSeries s_with{"with SLEDs", 'w', {}, {}};
  PlotSeries s_without{"without SLEDs", 'o', {}, {}};
  for (int i = 0; i <= 40; ++i) {
    const double t = t_max * i / 40.0;
    std::printf("%-14.3f %14.3f %14.3f\n", t, with.At(t), without.At(t));
    s_with.xs.push_back(t);
    s_with.ys.push_back(with.At(t));
    s_without.xs.push_back(t);
    s_without.ys.push_back(without.At(t));
  }
  PlotOptions options;
  options.title = "Cumulative distribution of grep -q times (NFS, 64 MB)";
  options.x_label = "Time elapsed (s)";
  options.y_label = "Fraction of runs";
  std::fputs(RenderPlot({s_without, s_with}, options).c_str(), stdout);
  std::printf("medians: with=%.3f s  without=%.3f s\n", with.Quantile(0.5),
              without.Quantile(0.5));
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
