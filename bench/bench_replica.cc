// Replication benchmark: two scenarios over a ReplicatedFs mount.
//
// 1. Rebuild storm — a 3-disk mount (replication_factor 2) loses one replica
//    for a long window while the workload keeps writing and reading. Reads
//    must keep succeeding (degraded routing), writes must keep committing
//    (stale marks instead of failures), and after the window a single
//    maintenance pass must re-sync every stale stripe. Reported numbers are
//    simulated-time and stripe counts: fully deterministic.
//
// 2. Hedged reads — an SSD replica inside a GC window paired with a disk
//    replica. Mean-ranked routing correctly keeps reading the SSD (the stall
//    is rare, the mean stays far below the disk's), but the stalled 5% of
//    reads dominate p99. With hedging on, a read that outlives the
//    p99-derived deadline is re-issued on the disk runner-up and charged
//    min(straggler, deadline + hedge) — per-read latency can never get
//    worse, and the GC tail collapses to roughly deadline + disk time. The
//    gated `speedup` is p99_off / p99_on (simulated time, deterministic).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/device/disk_device.h"
#include "src/device/ssd_device.h"
#include "src/device/fault.h"
#include "src/kernel/sim_kernel.h"
#include "src/replica/replicated_fs.h"

namespace sled {
namespace {

struct World {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
  ReplicatedFs* fs = nullptr;
};

World MakeWorld(int num_disks, uint64_t seed_base, ReplicatedFsConfig rc) {
  World w;
  KernelConfig config;
  config.cache.capacity_pages = 4096;
  w.kernel = std::make_unique<SimKernel>(config);
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (int i = 0; i < num_disks; ++i) {
    DiskDeviceConfig dc;
    dc.seed = seed_base + static_cast<uint64_t>(i);
    devs.push_back(std::make_unique<DiskDevice>(dc, "disk" + std::to_string(i)));
  }
  auto fs = std::make_unique<ReplicatedFs>("repl", std::move(devs), rc);
  w.fs = fs.get();
  SLED_CHECK(w.kernel->Mount("/", std::move(fs)).ok(), "mount failed");
  w.proc = &w.kernel->CreateProcess("replbench");
  return w;
}

void WriteFile(World& w, const std::string& path, int64_t size, char fill) {
  const int fd = w.kernel->Create(*w.proc, path).value();
  const std::string data(static_cast<size_t>(size), fill);
  SLED_CHECK(w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok(),
             "write failed");
  SLED_CHECK(w.kernel->Close(*w.proc, fd).ok(), "close failed");
}

int64_t ReadAll(World& w, const std::string& path) {
  const int fd = w.kernel->Open(*w.proc, path).value();
  std::vector<char> buf(64 * 1024);
  int64_t total = 0;
  for (;;) {
    auto n = w.kernel->Read(*w.proc, fd, std::span<char>(buf.data(), buf.size()));
    if (!n.ok() || n.value() == 0) {
      break;
    }
    total += n.value();
  }
  SLED_CHECK(w.kernel->Close(*w.proc, fd).ok(), "close failed");
  return total;
}

// ---- scenario 1: rebuild storm ----

struct StormResult {
  double outage_seconds = 0;    // simulated time spent working through the outage
  double recovery_seconds = 0;  // simulated time of the post-outage re-sync pass
  int64_t stale_stripes_peak = 0;
  int64_t recovered_bytes = 0;
  int64_t failed_writes = 0;
  int64_t degraded_writes = 0;
  int64_t read_bytes_during_outage = 0;
  bool resynced = false;
};

StormResult RunRebuildStorm() {
  constexpr int kFiles = 16;
  constexpr int64_t kFileBytes = 32 * kPageSize;
  ReplicatedFsConfig rc;
  rc.stripe_pages = 8;
  rc.replication_factor = 2;
  rc.replication_min = 1;
  World w = MakeWorld(3, 31, rc);

  for (int i = 0; i < kFiles; ++i) {
    WriteFile(w, "/f" + std::to_string(i), kFileBytes, 'a');
  }
  w.kernel->FlushAllDirty();
  w.kernel->DropCaches();

  // Replica 0 goes down for a long window; the workload does not stop.
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  plan->AttachClock(&w.kernel->clock());
  const TimePoint outage_start = w.kernel->clock().Now();
  plan->AddDownWindow(outage_start, outage_start + Seconds(600));
  w.fs->replica(0).InjectFaults(plan);

  StormResult r;
  // Overwrite half the files: every stripe placed on replica 0 goes stale.
  for (int i = 0; i < kFiles / 2; ++i) {
    WriteFile(w, "/f" + std::to_string(i), kFileBytes, 'b');
  }
  w.kernel->FlushAllDirty();
  // Read everything back through degraded routing.
  for (int i = 0; i < kFiles; ++i) {
    r.read_bytes_during_outage += ReadAll(w, "/f" + std::to_string(i));
  }
  r.outage_seconds = (w.kernel->clock().Now() - outage_start).ToSeconds();
  r.stale_stripes_peak = w.fs->stale_stripes();
  r.failed_writes = w.fs->rstats().failed_writes;
  r.degraded_writes = w.fs->rstats().degraded_writes;

  // Window ends; one maintenance pass rebuilds the stale replica.
  w.kernel->clock().Advance(Seconds(700));
  r.recovery_seconds = w.kernel->RunMaintenance().ToSeconds();
  r.recovered_bytes = w.fs->rstats().recovered_bytes;
  r.resynced = w.fs->stale_stripes() == 0;
  return r;
}

// ---- scenario 2: hedged reads ----

struct HedgeResult {
  double p50_ms = 0;
  double p99_ms = 0;
  int64_t hedges = 0;
  int64_t hedge_wins = 0;
};

HedgeResult RunHedgeSweep(bool hedge) {
  constexpr int64_t kPages = 1024;
  ReplicatedFsConfig rc;
  rc.stripe_pages = 8;
  rc.hedge_reads = hedge;
  rc.hedge_deadline_factor = 0.25;
  World w;
  {
    KernelConfig config;
    config.cache.capacity_pages = 4096;
    w.kernel = std::make_unique<SimKernel>(config);
    std::vector<std::unique_ptr<StorageDevice>> devs;
    devs.push_back(std::make_unique<SsdDevice>(SsdDeviceConfig{}, "ssd"));
    devs.push_back(std::make_unique<DiskDevice>(DiskDeviceConfig{}, "disk"));
    auto fs = std::make_unique<ReplicatedFs>("repl", std::move(devs), rc);
    w.fs = fs.get();
    SLED_CHECK(w.kernel->Mount("/", std::move(fs)).ok(), "mount failed");
    w.proc = &w.kernel->CreateProcess("replbench");
  }

  WriteFile(w, "/data", kPages * kPageSize, 'x');
  w.kernel->FlushAllDirty();
  w.kernel->DropCaches();

  // The SSD enters a GC window for the whole read phase: one read in twenty
  // stalls 50 ms. The mean stays far below the disk's, so mean-ranked
  // routing keeps every read on the SSD in both modes.
  FaultPlanConfig fc;
  fc.seed = 41;
  auto plan = std::make_shared<FaultPlan>(fc);
  plan->AttachClock(&w.kernel->clock());
  plan->AddGcWindow(w.kernel->clock().Now(), w.kernel->clock().Now() + Seconds(3600),
                    Milliseconds(50), 0.05);
  w.fs->replica(0).InjectFaults(plan);

  // One-page reads in a shuffled order. The shuffle seed is fixed and
  // hedging never touches replica 0, so the two modes see identical
  // straggler times per read.
  std::vector<int64_t> order(kPages);
  for (int64_t i = 0; i < kPages; ++i) order[static_cast<size_t>(i)] = i;
  Rng rng(97);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(i)))]);
  }

  const int fd = w.kernel->Open(*w.proc, "/data").value();
  std::vector<char> buf(kPageSize);
  std::vector<double> lat;
  lat.reserve(order.size());
  for (const int64_t page : order) {
    SLED_CHECK(w.kernel->Lseek(*w.proc, fd, page * kPageSize, Whence::kSet).ok(), "lseek failed");
    const TimePoint t0 = w.kernel->clock().Now();
    SLED_CHECK(w.kernel->Read(*w.proc, fd, std::span<char>(buf.data(), buf.size())).ok(),
               "read failed");
    lat.push_back((w.kernel->clock().Now() - t0).ToSeconds());
  }
  SLED_CHECK(w.kernel->Close(*w.proc, fd).ok(), "close failed");

  std::sort(lat.begin(), lat.end());
  HedgeResult r;
  r.p50_ms = lat[lat.size() / 2] * 1e3;
  r.p99_ms = lat[static_cast<size_t>(0.99 * static_cast<double>(lat.size() - 1))] * 1e3;
  r.hedges = w.fs->rstats().hedges_issued;
  r.hedge_wins = w.fs->rstats().hedge_wins;
  return r;
}

int Main() {
  const StormResult storm = RunRebuildStorm();
  std::printf("# rebuild storm: 3 disks, factor 2, replica 0 down 600 s\n");
  std::printf("  outage work: %.3f s, %lld bytes read degraded, %lld failed / %lld degraded "
              "writes\n",
              storm.outage_seconds, static_cast<long long>(storm.read_bytes_during_outage),
              static_cast<long long>(storm.failed_writes),
              static_cast<long long>(storm.degraded_writes));
  std::printf("  recovery: %lld stale stripes, %lld bytes in %.3f s, resynced=%s\n",
              static_cast<long long>(storm.stale_stripes_peak),
              static_cast<long long>(storm.recovered_bytes), storm.recovery_seconds,
              storm.resynced ? "yes" : "no");

  const HedgeResult off = RunHedgeSweep(false);
  const HedgeResult on = RunHedgeSweep(true);
  const double speedup = on.p99_ms > 0 ? off.p99_ms / on.p99_ms : 0.0;
  std::printf("# hedged reads: gc-windowed ssd + disk, 1024 shuffled 4 KiB reads, deadline 0.25 * p99\n");
  std::printf("  off: p50 %.3f ms  p99 %.3f ms\n", off.p50_ms, off.p99_ms);
  std::printf("  on:  p50 %.3f ms  p99 %.3f ms  (%lld hedges, %lld wins)  p99 speedup %.2fx\n",
              on.p50_ms, on.p99_ms, static_cast<long long>(on.hedges),
              static_cast<long long>(on.hedge_wins), speedup);

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"rebuild_storm\": {\"outage_seconds\": %.6f, \"recovery_seconds\": %.6f, "
      "\"stale_stripes\": %lld, \"recovered_bytes\": %lld, \"failed_writes\": %lld, "
      "\"degraded_writes\": %lld, \"resynced\": %s},\n"
      "  \"hedge_p99\": {\"speedup\": %.6f, \"p99_off_ms\": %.6f, \"p99_on_ms\": %.6f, "
      "\"hedges\": %lld, \"hedge_wins\": %lld}\n"
      "}",
      storm.outage_seconds, storm.recovery_seconds,
      static_cast<long long>(storm.stale_stripes_peak),
      static_cast<long long>(storm.recovered_bytes), static_cast<long long>(storm.failed_writes),
      static_cast<long long>(storm.degraded_writes), storm.resynced ? "true" : "false", speedup,
      off.p99_ms, on.p99_ms, static_cast<long long>(on.hedges),
      static_cast<long long>(on.hedge_wins));
  PrintBenchMetrics("replica", json);
  return storm.resynced && speedup >= 1.0 ? 0 : 1;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
