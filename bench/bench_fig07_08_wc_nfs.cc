// Reproduces paper Figure 7 (wc execution time over NFS, with and without
// SLEDs, warm cache) and Figure 8 (the derived speedup ratio).
//
// Expected shape: the two curves track each other until the file stops
// fitting in the ~40 MB file cache; beyond that the without-SLEDs curve
// keeps climbing at device bandwidth while with-SLEDs saves roughly
// (cache size / NFS bandwidth) seconds — a constant absolute gap, a peak
// ratio (~4-5x in the paper) just above the cache size, and a gradual decline
// of the ratio afterwards.
#include "bench/bench_util.h"
#include "src/apps/wc.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

int Main() {
  const BenchParams params = BenchParams::FromEnv(PaperUnixSizes());
  const SweepResult sweep = RunFigureSweep(
      [](uint64_t seed) { return MakeUnixTestbed(StorageKind::kNfs, seed); },
      [](Testbed& tb, int64_t size, Rng& rng) {
        Process& gen = tb.kernel->CreateProcess("gen");
        SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/file.txt", size, rng).ok(),
                   "generation failed");
        tb.kernel->DropCaches();
        return std::function<void(SimKernel&, Process&, Rng&)>();
      },
      [](SimKernel& kernel, Process& p, bool use_sleds) {
        WcOptions options;
        options.use_sleds = use_sleds;
        SLED_CHECK(WcApp::Run(kernel, p, "/data/file.txt", options).ok(), "wc failed");
      },
      params);
  PrintFigure("Figure 7", "Time for NFS wc with/without SLEDs", "Execution time (s)",
              sweep.time_points);
  PrintRatioFigure("Figure 8", "Time ratio of wo/w SLEDs for nfs wc", sweep.time_points);
  PrintBenchMetrics("fig07_08", sweep.metrics_json);
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
