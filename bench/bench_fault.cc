// Fault-injection benchmark: graceful degradation under rising device fault
// probability. One workload — stream-write a file three times the cache size
// (forcing eviction writeback while faults fire), fsync, drop caches, then
// read it back sequentially — repeated under per-op fault probabilities from
// 0 (baseline) to an extreme 0.8.
//
// Expected shape: the run completes at every probability (no hangs — every
// retry path is bounded); at modest p the kernel's retry/backoff machinery
// masks everything (zero failed syscalls, zero lost dirty pages) at a small
// time cost; only at extreme p do syscalls start returning kEIO and — past
// the writeback attempt cap — dirty pages get counted lost rather than
// wedging the queue. Lost pages are always accounted, never silent.
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/device/device.h"
#include "src/device/fault.h"
#include "src/fs/vfs.h"
#include "src/workload/testbed.h"

namespace sled {
namespace {

constexpr int64_t kFileBytes = 4 * MiB(1);
constexpr int64_t kChunkBytes = 64 * 1024;
constexpr int64_t kCachePages = 256;  // 1 MiB cache vs 4 MiB file: eviction writeback
// App-level retry budget per chunk before skipping ahead. The kernel already
// retries each transfer max_io_retries times, so hitting this cap means the
// chunk failed (retries+1) * kMaxChunkAttempts device attempts in a row.
constexpr int kMaxChunkAttempts = 50;

struct FaultResult {
  double p = 0;
  double seconds = 0;
  bool completed = false;       // both phases ran to the end of the file
  int64_t read_errors = 0;      // Read() syscalls that returned an error
  int64_t write_errors = 0;     // Write()/Fsync() syscalls that returned an error
  int64_t app_retries = 0;      // chunk re-issues after a failed syscall
  int64_t io_retries = 0;       // kernel immediate transfer re-issues
  int64_t io_errors = 0;        // transfers failed past all kernel retries
  int64_t writeback_retries = 0;
  int64_t writeback_lost = 0;
  int64_t faults_injected = 0;  // device-level faults that escaped the controller
  int64_t transient_masked = 0;
};

FaultResult RunAtProbability(double p) {
  TestbedConfig config;
  config.kind = StorageKind::kDisk;
  config.cache_pages = kCachePages;
  config.seed = 42;
  Testbed tb = MakeTestbed(config);
  SimKernel& k = *tb.kernel;

  StorageDevice* dev = k.vfs().FsById(tb.data_fs_id)->PrimaryDevice();
  std::shared_ptr<FaultPlan> plan;
  if (p > 0) {
    FaultPlanConfig fc;
    fc.seed = 97;
    fc.read_fault_prob = p;
    fc.write_fault_prob = p;
    plan = std::make_shared<FaultPlan>(fc);
    plan->AttachClock(&k.clock());
    dev->InjectFaults(plan);
  }

  FaultResult r;
  r.p = p;
  const TimePoint start = k.clock().Now();

  Process& proc = k.CreateProcess("faultbench");
  const int wfd = k.Create(proc, "/data/victim").value();
  const std::string block(kChunkBytes, 'x');
  bool wrote_all = true;
  for (int64_t off = 0; off < kFileBytes; off += kChunkBytes) {
    int attempts = 0;
    while (true) {
      auto w = k.Write(proc, wfd, std::span<const char>(block.data(), block.size()));
      if (w.ok()) break;
      ++r.write_errors;
      if (++attempts >= kMaxChunkAttempts) {
        wrote_all = false;
        // Give up on this chunk; the file keeps its current size, so the
        // read-back phase below shortens accordingly.
        break;
      }
      ++r.app_retries;
      SLED_CHECK(k.Lseek(proc, wfd, off, Whence::kSet).ok(), "lseek failed");
    }
    if (!wrote_all) break;
  }
  if (auto s = k.Fsync(proc, wfd); !s.ok()) ++r.write_errors;
  SLED_CHECK(k.Close(proc, wfd).ok(), "close failed");
  k.DropCaches();

  const int rfd = k.Open(proc, "/data/victim").value();
  const int64_t file_bytes = k.Fstat(proc, rfd).ok() ? k.Fstat(proc, rfd).value().size : 0;
  std::vector<char> buf(kChunkBytes);
  bool read_all = true;
  int64_t off = 0;
  while (off < file_bytes) {
    int attempts = 0;
    int64_t n = 0;
    while (true) {
      auto got = k.Read(proc, rfd, std::span<char>(buf.data(), buf.size()));
      if (got.ok()) {
        n = got.value();
        break;
      }
      ++r.read_errors;
      if (++attempts >= kMaxChunkAttempts) {
        read_all = false;
        break;
      }
      ++r.app_retries;
      SLED_CHECK(k.Lseek(proc, rfd, off, Whence::kSet).ok(), "lseek failed");
    }
    if (!read_all || n == 0) break;
    off += n;
  }
  SLED_CHECK(k.Close(proc, rfd).ok(), "close failed");
  (void)k.FlushAllDirty();  // bounded internally by the writeback attempt cap

  r.completed = wrote_all && read_all && off >= file_bytes;
  r.seconds = (k.clock().Now() - start).ToSeconds();
  r.io_retries = k.stats().io_retries;
  r.io_errors = k.stats().io_errors;
  r.writeback_retries = k.stats().writeback_retries;
  r.writeback_lost = k.stats().writeback_lost;
  if (plan) {
    r.faults_injected = plan->stats().faults_injected;
    r.transient_masked = plan->stats().transient_masked;
  }
  return r;
}

int Main() {
  const std::vector<double> probs = {0.0, 0.001, 0.01, 0.05, 0.2, 0.8};
  std::vector<FaultResult> results;
  for (double p : probs) results.push_back(RunAtProbability(p));

  std::printf("# fault sweep: %lld MiB file, %lld KiB cache, write+fsync+readback\n",
              static_cast<long long>(kFileBytes / MiB(1)),
              static_cast<long long>(kCachePages * 4));
  std::printf("%-8s %9s %5s %8s %8s %8s %8s %8s %8s %8s\n", "p", "time(s)", "done", "rd_err",
              "wr_err", "io_rtry", "io_err", "wb_rtry", "wb_lost", "faults");
  for (const FaultResult& r : results) {
    std::printf("%-8.3f %9.3f %5s %8lld %8lld %8lld %8lld %8lld %8lld %8lld\n", r.p, r.seconds,
                r.completed ? "yes" : "no", static_cast<long long>(r.read_errors),
                static_cast<long long>(r.write_errors), static_cast<long long>(r.io_retries),
                static_cast<long long>(r.io_errors), static_cast<long long>(r.writeback_retries),
                static_cast<long long>(r.writeback_lost),
                static_cast<long long>(r.faults_injected));
  }

  std::string json = "{\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const FaultResult& r = results[i];
    char line[640];
    std::snprintf(
        line, sizeof(line),
        "  \"p_%g\": {\"seconds\": %.6f, \"completed\": %s, \"read_errors\": %lld, "
        "\"write_errors\": %lld, \"app_retries\": %lld, \"io_retries\": %lld, "
        "\"io_errors\": %lld, \"writeback_retries\": %lld, \"writeback_lost\": %lld, "
        "\"faults_injected\": %lld, \"transient_masked\": %lld}%s\n",
        r.p, r.seconds, r.completed ? "true" : "false", static_cast<long long>(r.read_errors),
        static_cast<long long>(r.write_errors), static_cast<long long>(r.app_retries),
        static_cast<long long>(r.io_retries), static_cast<long long>(r.io_errors),
        static_cast<long long>(r.writeback_retries), static_cast<long long>(r.writeback_lost),
        static_cast<long long>(r.faults_injected), static_cast<long long>(r.transient_masked),
        i + 1 < results.size() ? "," : "");
    json += line;
  }
  json += "}";
  PrintBenchMetrics("fault", json);
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
