// Ablation: file-system aging. The paper's testbed used freshly created
// (contiguous) files; on an aged, fragmented ext2 the without-SLEDs pass
// pays a seek per extent, while the SLEDs pass still avoids refetching the
// cached portion entirely — so SLEDs gains grow with fragmentation. Also
// sweeps the cache replacement policy (LRU vs Clock), showing the Figure 3
// pathology is not LRU-specific.
#include <cstdio>

#include "src/apps/wc.h"
#include "src/common/units.h"
#include "src/workload/experiment.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

double MeasureWc(const TestbedConfig& config, bool use_sleds, uint64_t seed) {
  TestbedConfig c = config;
  c.seed = seed;
  Testbed tb = MakeTestbed(c);
  Process& gen = tb.kernel->CreateProcess("gen");
  Rng rng(seed);
  SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/file.txt", MiB(64), rng).ok(),
             "generation failed");
  tb.kernel->DropCaches();
  Rng run_rng(seed + 5);
  return RunWarmCacheSeries(tb, /*repeats=*/5, run_rng, nullptr,
                            [&](SimKernel& k, Process& p) {
                              WcOptions options;
                              options.use_sleds = use_sleds;
                              SLED_CHECK(WcApp::Run(k, p, "/data/file.txt", options).ok(),
                                         "wc failed");
                            })
      .seconds.mean;
}

int Main() {
  std::printf("==== Ablation: file-system aging and cache policy (wc, ext2, 64 MB) ====\n\n");

  std::printf("fragmentation (max extent / gap):\n");
  std::printf("  %-28s %12s %12s %9s\n", "layout", "with", "without", "ratio");
  struct Layout {
    const char* name;
    int64_t max_extent;
    int64_t gap;
  };
  const Layout layouts[] = {
      {"contiguous (fresh fs)", 1LL << 40, 0},
      {"1 MiB extents, 1 MiB gaps", kMiB, kMiB},
      {"256 KiB extents, 2 MiB gaps", 256 * kKiB, 2 * kMiB},
      {"64 KiB extents, 4 MiB gaps", 64 * kKiB, 4 * kMiB},
  };
  for (const Layout& layout : layouts) {
    TestbedConfig config;
    config.kind = StorageKind::kDisk;
    config.alloc.max_extent_bytes = layout.max_extent;
    config.alloc.inter_extent_gap_bytes = layout.gap;
    const double with = MeasureWc(config, true, 810);
    const double without = MeasureWc(config, false, 820);
    std::printf("  %-28s %10.2f s %10.2f s %8.2fx\n", layout.name, with, without,
                without / with);
  }

  std::printf("\ncache replacement policy:\n");
  std::printf("  %-28s %12s %12s %9s\n", "policy", "with", "without", "ratio");
  for (ReplacementPolicy policy : {ReplacementPolicy::kLru, ReplacementPolicy::kClock}) {
    TestbedConfig config;
    config.kind = StorageKind::kDisk;
    config.cache_policy = policy;
    const double with = MeasureWc(config, true, 830);
    const double without = MeasureWc(config, false, 840);
    std::printf("  %-28s %10.2f s %10.2f s %8.2fx\n",
                policy == ReplacementPolicy::kLru ? "LRU (Linux 2.2)" : "Clock (second chance)",
                with, without, without / with);
  }
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
