// SSD extension bench: two demonstrations that distribution-valued SLEDs
// carry information the scalar mean cannot.
//
// Part 1 — GC tail: under sustained random writes inside a GC-spike window,
// the read-latency distribution is sharply bimodal. The p99 read latency is
// many multiples of the p50 — exactly the shape the quantile fields of the
// Sled expose and the scalar mean hides.
//
// Part 2 — tail-aware picking: a file striped across an SSD tier (in a GC
// window) and a disk tier. Ranked by mean latency the picker starts on the
// SSD stripes (they look cheap on average) and the first results eat GC
// stalls; ranked by p99 it starts on the disk stripes and the time to the
// first quartile of data drops.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/device/disk_device.h"
#include "src/device/ssd_device.h"
#include "src/fs/tiered_fs.h"
#include "src/kernel/sim_kernel.h"
#include "src/sleds/picker.h"

namespace sled {
namespace {

struct GcTailResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double write_amplification = 0.0;
  int64_t gc_cycles = 0;
  int64_t gc_stalls = 0;
};

GcTailResult Part1() {
  std::printf("part 1: read-latency tail under sustained writes in a GC window\n");
  SsdDeviceConfig config;
  config.capacity_bytes = 512LL * kMiB;
  SsdDevice ssd(config);
  SimClock clock;
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{.seed = 41});
  ssd.InjectFaults(plan);
  plan->AttachClock(&clock);
  // A long GC spike: 5% of ops catch a 20 ms foreground stall on top of the
  // organic (capped) GC-debt drains the sustained writes generate.
  plan->AddGcWindow(clock.Now(), clock.Now() + Seconds(1000000), Milliseconds(20), 0.05);

  Rng rng(42);
  std::vector<double> read_ms;
  for (int i = 0; i < 4000; ++i) {
    const int64_t woff = PageFloor(rng.Uniform(0, config.capacity_bytes - 256 * kKiB));
    (void)ssd.Write(woff, 256 * kKiB);
    const int64_t roff = PageFloor(rng.Uniform(0, config.capacity_bytes - kPageSize));
    read_ms.push_back(ssd.Read(roff, kPageSize).value().ToSeconds() * 1e3);
  }
  std::sort(read_ms.begin(), read_ms.end());
  GcTailResult r;
  r.p50_ms = read_ms[read_ms.size() / 2];
  r.p99_ms = read_ms[read_ms.size() * 99 / 100];
  r.write_amplification = ssd.write_amplification();
  r.gc_cycles = ssd.gc_cycles();
  r.gc_stalls = plan->stats().gc_stalls;
  std::printf("  %zu reads: p50 %.3f ms  p99 %.3f ms  (p99/p50 = %.1fx)\n", read_ms.size(),
              r.p50_ms, r.p99_ms, r.p99_ms / r.p50_ms);
  std::printf("  write amplification %.2f, %lld GC cycles, %lld window stalls\n\n",
              r.write_amplification, static_cast<long long>(r.gc_cycles),
              static_cast<long long>(r.gc_stalls));
  return r;
}

struct TieredWorld {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
  TieredFs* fs = nullptr;
  int fd = -1;
};

constexpr int64_t kFileBytes = 16LL * kMiB;

TieredWorld MakeTieredWorld() {
  TieredWorld w;
  KernelConfig kc;
  kc.cache.capacity_pages = 256;  // small: the file never fits
  w.kernel = std::make_unique<SimKernel>(kc);
  auto fs = std::make_unique<TieredFs>("tiered", std::make_unique<SsdDevice>(SsdDeviceConfig{}),
                                       std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  w.fs = fs.get();
  SLED_CHECK(w.kernel->Mount("/", std::move(fs)).ok(), "mount failed");
  w.proc = &w.kernel->CreateProcess("bench");
  w.fd = w.kernel->Create(*w.proc, "/mixed.dat").value();
  const std::string data(static_cast<size_t>(kFileBytes), 'd');
  SLED_CHECK(w.kernel->Write(*w.proc, w.fd, std::span<const char>(data.data(), data.size())).ok(),
             "write failed");
  w.kernel->FlushAllDirty();
  w.kernel->DropCaches();
  // The SSD tier enters a GC window: the mean barely moves (duty * stall =
  // 12 ms, still under the disk's ~18 ms positioning) but the p99 balloons.
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{.seed = 43});
  w.fs->tier(0).InjectFaults(plan);
  plan->AttachClock(&w.kernel->clock());
  const TimePoint now = w.kernel->clock().Now();
  plan->AddGcWindow(now, now + Seconds(1000000), Milliseconds(60), 0.2);
  return w;
}

// Simulated seconds until the first `target` bytes arrive in pick order.
double TimeToFirstBytes(RankBy rank_by, int64_t target) {
  TieredWorld w = MakeTieredWorld();
  PickerOptions opts;
  opts.rank_by = rank_by;
  auto picker = SledsPicker::Create(*w.kernel, *w.proc, w.fd, opts).value();
  std::vector<char> buf;
  const TimePoint t0 = w.kernel->clock().Now();
  int64_t delivered = 0;
  while (delivered < target) {
    const auto pick = picker->NextRead().value();
    if (pick.length == 0) {
      break;
    }
    buf.resize(static_cast<size_t>(pick.length));
    (void)w.kernel->Lseek(*w.proc, w.fd, pick.offset, Whence::kSet);
    (void)w.kernel->Read(*w.proc, w.fd, std::span<char>(buf.data(), buf.size()));
    delivered += pick.length;
  }
  return (w.kernel->clock().Now() - t0).ToSeconds();
}

struct RankByResult {
  double mean_ttfr_s = 0.0;
  double p99_ttfr_s = 0.0;
};

RankByResult Part2() {
  std::printf("part 2: time to first quartile, SSD/HDD tiered file, SSD in GC window\n");
  RankByResult r;
  r.mean_ttfr_s = TimeToFirstBytes(RankBy::kMean, kFileBytes / 4);
  r.p99_ttfr_s = TimeToFirstBytes(RankBy::kP99, kFileBytes / 4);
  std::printf("  rank_by=mean  %8.3f s  (starts on the SSD stripes, eats GC stalls)\n",
              r.mean_ttfr_s);
  std::printf("  rank_by=p99   %8.3f s  (defers the SSD tier, %.2fx faster to first data)\n",
              r.p99_ttfr_s, r.mean_ttfr_s / r.p99_ttfr_s);
  return r;
}

int Main() {
  std::printf("==== Extension: SSD GC tail and tail-aware picking ====\n\n");
  const GcTailResult gc = Part1();
  const RankByResult rank = Part2();

  std::string json = "{\n";
  char line[512];
  std::snprintf(line, sizeof(line),
                "  \"gc_tail\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"ratio\": %.2f,\n"
                "              \"write_amplification\": %.3f, \"gc_cycles\": %lld,\n"
                "              \"gc_stalls\": %lld},\n",
                gc.p50_ms, gc.p99_ms, gc.p99_ms / gc.p50_ms, gc.write_amplification,
                static_cast<long long>(gc.gc_cycles), static_cast<long long>(gc.gc_stalls));
  json += line;
  std::snprintf(line, sizeof(line),
                "  \"rank_by\": {\"mean_ttfr_s\": %.4f, \"p99_ttfr_s\": %.4f, "
                "\"improvement\": %.2f}\n",
                rank.mean_ttfr_s, rank.p99_ttfr_s, rank.mean_ttfr_s / rank.p99_ttfr_s);
  json += line;
  json += "}";
  PrintBenchMetrics("ssd", json);
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
