// Ablation: refreshing SLEDs mid-run vs the paper's snapshot-at-init
// implementation (§3.4 staleness limitation / §4.2 "Refreshing the state of
// those SLEDs occasionally would allow the library to take advantage of any
// changes in state").
//
// Scenario: a SLEDs-guided reader starts against a cold 128 MB file (plan:
// one big disk SLED, read in offset order); halfway through, another
// application reads the final 8 MB stripe into the cache. A snapshot picker
// never learns this: by the time its linear plan reaches the tail, its own
// intervening 56 MB of cold reads have pushed the stripe back out of the
// 40 MB cache, and it pays the disk for it again. A refreshing picker re-plans
// after the stripe appears, consumes it from memory immediately, and saves
// those faults.
#include <cstdio>

#include "src/common/units.h"
#include "src/sleds/picker.h"
#include "src/workload/experiment.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

struct Outcome {
  double seconds = 0.0;
  int64_t faults = 0;
};

Outcome RunReader(int refresh_every, uint64_t seed) {
  Testbed tb = MakeUnixTestbed(StorageKind::kDisk, seed);
  Process& gen = tb.kernel->CreateProcess("gen");
  Rng rng(seed);
  const int64_t size = MiB(128);
  SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/file.txt", size, rng).ok(), "gen failed");
  tb.kernel->DropCaches();

  SimKernel& kernel = *tb.kernel;
  Process& reader = kernel.CreateProcess("reader");
  const int fd = kernel.Open(reader, "/data/file.txt").value();
  PickerOptions options;
  options.preferred_chunk_bytes = 64 * kKiB;
  options.refresh_every_n_picks = refresh_every;
  auto picker = SledsPicker::Create(kernel, reader, fd, options).value();

  std::vector<char> buf(static_cast<size_t>(64 * kKiB));
  int64_t consumed = 0;
  bool injected = false;
  while (true) {
    auto pick = picker->NextRead().value();
    if (pick.length == 0) {
      break;
    }
    SLED_CHECK(kernel.Lseek(reader, fd, pick.offset, Whence::kSet).ok(), "lseek failed");
    SLED_CHECK(
        kernel.Read(reader, fd, std::span<char>(buf.data(), static_cast<size_t>(pick.length)))
            .ok(),
        "read failed");
    consumed += pick.length;
    if (!injected && consumed >= size / 2) {
      injected = true;
      // Another application streams the last 8 MB into the cache. Its cost
      // is charged to its own process, not the reader.
      Process& other = kernel.CreateProcess("other");
      const int ofd = kernel.Open(other, "/data/file.txt").value();
      SLED_CHECK(kernel.Lseek(other, ofd, size - MiB(8), Whence::kSet).ok(), "lseek failed");
      int64_t remaining = MiB(8);
      while (remaining > 0) {
        const int64_t n =
            kernel.Read(other, ofd, std::span<char>(buf.data(), buf.size())).value();
        if (n == 0) {
          break;
        }
        remaining -= n;
      }
      SLED_CHECK(kernel.Close(other, ofd).ok(), "close failed");
    }
  }
  SLED_CHECK(kernel.Close(reader, fd).ok(), "close failed");
  return {reader.stats().elapsed().ToSeconds(), reader.stats().major_faults};
}

int Main() {
  std::printf(
      "==== Ablation: SLEDs refresh interval (cold 128 MB read; another process\n"
      "     caches the final 8 MB stripe halfway through) ====\n\n");
  std::printf("%-26s %14s %14s\n", "refresh every N picks", "elapsed", "major faults");
  for (int refresh : {0, 256, 64, 16, 4}) {
    const Outcome o = RunReader(refresh, 500 + refresh);
    const std::string label = refresh == 0 ? "never (paper impl)" : std::to_string(refresh);
    std::printf("%-26s %12.2f s %14lld\n", label.c_str(), o.seconds,
                static_cast<long long>(o.faults));
  }
  std::printf(
      "\nRefreshing pickers consume the stripe the other process cached before\n"
      "it is evicted (about 2k fewer faults, ~1 s less); very frequent refresh\n"
      "pays extra FSLEDS_GET scans for no additional benefit.\n");
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
