// Reproduces paper Figure 15: fimgbin elapsed time on ext2 (Table 3
// machine), 4x data reduction (2x2 boxcar), with and without SLEDs, warm
// cache. Also prints the 16x-reduction series the paper discusses in text
// (elapsed-time gains of 25-35% "indicating that the write traffic is an
// important factor" — the 16x case writes a 16th of the data).
#include "bench/bench_util.h"
#include "src/apps/fimgbin.h"
#include "src/workload/fits_gen.h"

namespace sled {
namespace {

SweepResult RunWithBoxcar(int boxcar, const BenchParams& params, uint64_t seed_base) {
  return RunFigureSweep(
      [](uint64_t seed) { return MakeLheasoftTestbed(seed); },
      [](Testbed& tb, int64_t size, Rng& rng) {
        Process& gen = tb.kernel->CreateProcess("gen");
        SLED_CHECK(
            GenerateFitsImage(*tb.kernel, gen, "/data/image.fits", size, -32, rng).ok(),
            "image generation failed");
        tb.kernel->DropCaches();
        return std::function<void(SimKernel&, Process&, Rng&)>();
      },
      [boxcar](SimKernel& kernel, Process& p, bool use_sleds) {
        FimgbinOptions options;
        options.use_sleds = use_sleds;
        options.boxcar = boxcar;
        SLED_CHECK(
            FimgbinApp::Run(kernel, p, "/data/image.fits", "/data/out.fits", options).ok(),
            "fimgbin failed");
      },
      params, seed_base);
}

int Main() {
  const BenchParams params = BenchParams::FromEnv(PaperLheasoftSizes());
  const SweepResult x4 = RunWithBoxcar(/*boxcar=*/2, params, 15000);
  PrintFigure("Figure 15", "Elapsed time for FIMGBIN with/without SLEDs (4x data reduction)",
              "Execution time (s)", x4.time_points);
  const SweepResult x16 = RunWithBoxcar(/*boxcar=*/4, params, 15500);
  PrintFigure("Figure 15b (text: 16x reduction)",
              "Elapsed time for FIMGBIN with/without SLEDs (16x data reduction)",
              "Execution time (s)", x16.time_points);
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
