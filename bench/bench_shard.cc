// Shard-scaling benchmark for the ShardRuntime (DESIGN.md §11).
//
// Runs the same multi-process, multi-mount world population under 1, 2, 4,
// and 8 shards and reports wall-clock speedup over the single-shard oracle.
// Before any timing, every sharded configuration is checked against the
// oracle: per-world results and the merged metrics export (latency
// histograms included) must be byte-identical, so the numbers below compare
// identical work, not approximately-similar work.
//
// Reported per shard count:
//   raw_speedup  oracle wall time / sharded wall time on this host. Bounded
//                by the machine's hardware threads — on a 1-core container
//                it hovers near 1.0 at every shard count.
//   speedup      parallel efficiency: raw_speedup / min(shards, hw_threads),
//                i.e. speedup per usable core. This is the machine-portable
//                number the perf gate tracks: ~1.0 means the runtime turns
//                every core it can use into linear speedup and degrades to a
//                no-overhead serial run when cores run out.
//
// Wall-clock only: the simulated clocks inside the worlds are unaffected by
// shard count (that is the determinism contract, and it is asserted here).
//
// Environment knobs:
//   SLEDS_SHARD_WORLDS   worlds per sweep                 (default 16)
//   SLEDS_SHARD_OPS      syscalls per world process       (default 96)
//   SLEDS_SHARD_REPEATS  best-of-N timing repeats         (default 3)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/log.h"
#include "src/obs/merge.h"
#include "src/shard/shard_runtime.h"
#include "src/workload/shard_world.h"

namespace sled {
namespace {

struct ShardBenchConfig {
  int64_t worlds = 24;
  int64_t ops_per_process = 160;
  int repeats = 3;

  static ShardBenchConfig FromEnv() {
    ShardBenchConfig c;
    if (const char* env = std::getenv("SLEDS_SHARD_WORLDS")) {
      c.worlds = std::max<int64_t>(2, atoll(env));
    }
    if (const char* env = std::getenv("SLEDS_SHARD_OPS")) {
      c.ops_per_process = std::max<int64_t>(8, atoll(env));
    }
    if (const char* env = std::getenv("SLEDS_SHARD_REPEATS")) {
      c.repeats = std::max(1, atoi(env));
    }
    return c;
  }
};

ShardWorldConfig WorldConfig(const ShardBenchConfig& bench, int64_t world_id) {
  ShardWorldConfig c;
  c.world_id = world_id;
  c.base_seed = 42;
  c.processes = 3;
  c.files_per_process = 3;
  c.file_kib = 192;
  c.ops_per_process = bench.ops_per_process;
  // Smaller than the per-world file footprint (9 files x 192 KiB = 432
  // pages), so the worlds page in and write back against device latency
  // rather than running purely cache-hot.
  c.cache_pages = 224;
  return c;
}

struct SweepOutcome {
  std::vector<ShardWorldResult> worlds;
  std::string merged_json;
  int64_t sim_ns_sum = 0;
  int64_t syscalls_sum = 0;
  int64_t pages_sum = 0;
};

SweepOutcome RunOnce(int shards, const ShardBenchConfig& bench) {
  ShardRuntime rt(ShardConfig{.shards = shards});
  SweepOutcome out;
  out.worlds.resize(static_cast<size_t>(bench.worlds));
  std::vector<ObsAccumulator> accs(static_cast<size_t>(rt.shards()));
  const RuntimeReport report = rt.Run(bench.worlds, [&](WorldContext& ctx) {
    ShardWorldConfig c = WorldConfig(bench, ctx.world_id());
    c.shard_id = ctx.shard_id();
    ShardWorldResult r = RunShardWorld(c, &accs[static_cast<size_t>(ctx.shard_id())]);
    out.worlds[static_cast<size_t>(ctx.world_id())] = r;
    ctx.Progress(r.sim_ns, r.syscalls, r.pages_paged_in);
  });
  ObsAccumulator total;
  for (const ObsAccumulator& acc : accs) {
    total.Absorb(acc);
  }
  out.merged_json = total.MetricsJson();
  out.sim_ns_sum = report.sim_ns_sum;
  out.syscalls_sum = report.syscalls_sum;
  out.pages_sum = report.pages_sum;
  return out;
}

void AssertMatchesOracle(const SweepOutcome& oracle, const SweepOutcome& sharded, int shards) {
  SLED_CHECK(oracle.worlds.size() == sharded.worlds.size(), "world count diverged");
  for (size_t w = 0; w < oracle.worlds.size(); ++w) {
    SLED_CHECK(oracle.worlds[w] == sharded.worlds[w],
               "world %zu diverged from oracle at %d shards", w, shards);
  }
  SLED_CHECK(oracle.merged_json == sharded.merged_json,
             "merged metrics diverged from oracle at %d shards", shards);
  SLED_CHECK(oracle.sim_ns_sum == sharded.sim_ns_sum &&
                 oracle.syscalls_sum == sharded.syscalls_sum &&
                 oracle.pages_sum == sharded.pages_sum,
             "runtime report diverged from oracle at %d shards", shards);
}

double BestWallMicros(int repeats, int shards, const ShardBenchConfig& bench) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const SweepOutcome out = RunOnce(shards, bench);
    const auto t1 = std::chrono::steady_clock::now();
    SLED_CHECK(out.sim_ns_sum > 0, "empty sweep");
    best = std::min(best, std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  return best;
}

void RunShardSuite() {
  const ShardBenchConfig bench = ShardBenchConfig::FromEnv();
  const int hw = HardwareThreads();
  std::fprintf(stderr, "bench_shard: %lld worlds, %lld ops/process, best of %d, %d hw threads\n",
               static_cast<long long>(bench.worlds),
               static_cast<long long>(bench.ops_per_process), bench.repeats, hw);

  // Differential prefix: every shard count must reproduce the oracle exactly
  // before its wall clock means anything.
  const SweepOutcome oracle = RunOnce(1, bench);
  for (int shards : {2, 4, 8}) {
    AssertMatchesOracle(oracle, RunOnce(shards, bench), shards);
  }
  std::fprintf(stderr, "  differential prefix ok (merged results identical at 1/2/4/8 shards)\n");

  const double oracle_us = BestWallMicros(bench.repeats, 1, bench);
  std::fprintf(stderr, "  oracle (1 shard): %.0f us\n", oracle_us);

  std::string json = "{\n";
  json += "  \"config\": {\"worlds\": " + std::to_string(bench.worlds) +
          ", \"ops_per_process\": " + std::to_string(bench.ops_per_process) +
          ", \"repeats\": " + std::to_string(bench.repeats) +
          ", \"hardware_threads\": " + std::to_string(hw) + "},\n";
  {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  \"oracle\": {\"wall_us\": %.1f, \"sim_ns_sum\": %lld, "
                  "\"syscalls_sum\": %lld, \"pages_sum\": %lld},\n",
                  oracle_us, static_cast<long long>(oracle.sim_ns_sum),
                  static_cast<long long>(oracle.syscalls_sum),
                  static_cast<long long>(oracle.pages_sum));
    json += line;
  }
  for (int shards : {2, 4, 8}) {
    const double wall_us = BestWallMicros(bench.repeats, shards, bench);
    const double raw = wall_us > 0 ? oracle_us / wall_us : 0;
    const int usable = std::min(shards, hw);
    const double efficiency = usable > 0 ? raw / usable : 0;
    std::fprintf(stderr, "  %d shards: %.0f us, raw %.2fx, efficiency %.2f\n", shards, wall_us,
                 raw, efficiency);
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  \"scale_%d\": {\"wall_us\": %.1f, \"raw_speedup\": %.2f, "
                  "\"usable_cores\": %d, \"merged_identical\": 1, \"speedup\": %.2f},\n",
                  shards, wall_us, raw, usable, efficiency);
    json += line;
  }
  // The merged export itself, so downstream tooling sees the histograms the
  // determinism assertion compared.
  json += "  \"merged\": ";
  json += oracle.merged_json;
  if (!json.empty() && json.back() == '\n') {
    json.pop_back();
  }
  json += "\n}";
  PrintBenchMetrics("shard", json);
}

}  // namespace
}  // namespace sled

int main() {
  sled::RunShardSuite();
  return 0;
}
