// Million-client open-loop benchmark (DESIGN.md §12).
//
// Phase A — scheduler: one world, synthetic service, a full million-client
// population (one pending arrival per client, always) driven through the
// hierarchical timing wheel and through the binary-heap reference. Before any
// timing, the two runs' world results — every counter, the order-sensitive
// completion checksum, and the full latency histogram — are asserted
// identical, so the wall-clock ratio compares identical work. The perf gate
// tracks `wheel_1m.speedup` (heap wall / wheel wall).
//
// Phase B — scenarios: open-loop traffic against real SimKernel worlds on
// the shard runtime, one scenario per arrival pattern (plus an NFS device
// contrast), each emitting offered-vs-achieved throughput, p50/p95/p99/p999,
// and the full latency CDF into the BENCH_openloop.json block.
//
// Environment knobs:
//   SLEDS_OPENLOAD_CLIENTS           phase-A population        (1000000)
//   SLEDS_OPENLOAD_RATE              per-client arrivals/s     (4)
//   SLEDS_OPENLOAD_PATTERN           restrict phase B to one of
//                                    poisson|burst|diurnal     (all)
//   SLEDS_OPENLOAD_SCENARIO_CLIENTS  phase-B population        (40000)
//   SLEDS_OPENLOAD_HORIZON           phase-B horizon, sim s    (5)
//   SLEDS_OPENLOAD_REPEATS           best-of-N timing repeats  (2)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/log.h"
#include "src/openload/engine.h"

namespace sled {
namespace {

struct LoopBenchConfig {
  int64_t clients = 1'000'000;
  double rate = 4.0;
  int64_t scenario_clients = 40000;
  double horizon_s = 5.0;
  int repeats = 2;
  const char* only_pattern = nullptr;

  static LoopBenchConfig FromEnv() {
    LoopBenchConfig c;
    if (const char* env = std::getenv("SLEDS_OPENLOAD_CLIENTS")) {
      c.clients = std::max<int64_t>(1000, atoll(env));
    }
    if (const char* env = std::getenv("SLEDS_OPENLOAD_RATE")) {
      c.rate = std::max(0.1, atof(env));
    }
    if (const char* env = std::getenv("SLEDS_OPENLOAD_SCENARIO_CLIENTS")) {
      c.scenario_clients = std::max<int64_t>(100, atoll(env));
    }
    if (const char* env = std::getenv("SLEDS_OPENLOAD_HORIZON")) {
      c.horizon_s = std::max(0.5, atof(env));
    }
    if (const char* env = std::getenv("SLEDS_OPENLOAD_REPEATS")) {
      c.repeats = std::max(1, atoi(env));
    }
    if (const char* env = std::getenv("SLEDS_OPENLOAD_PATTERN")) {
      c.only_pattern = env;
    }
    return c;
  }
};

OpenLoadConfig SchedulerConfig(const LoopBenchConfig& bench, SchedulerKind scheduler) {
  OpenLoadConfig c;
  c.clients = bench.clients;
  c.worlds = 1;
  c.shards = 1;
  c.service = ServiceModel::kSynthetic;
  c.pattern = ArrivalPattern::kPoisson;
  c.per_client_rps = bench.rate;
  // Phase A measures the scheduler, not simulated queueing: ~rate arrivals
  // per client over one simulated second keeps every client's timer cycling
  // through schedule -> cascade -> expire while the population stays at
  // exactly `clients` pending timers throughout.
  c.horizon_s = 1.0;
  c.scheduler = scheduler;
  c.seed = 4242;
  return c;
}

double BestWallMicros(const OpenLoadConfig& c, int repeats, const OpenLoadWorldResult& expect) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const OpenLoadWorldResult r = RunOpenLoadWorld(c, 0, nullptr);
    const auto t1 = std::chrono::steady_clock::now();
    SLED_CHECK(r == expect, "timed run diverged from the asserted result");
    best = std::min(best, std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  return best;
}

std::string SchedulerPhase(const LoopBenchConfig& bench) {
  const OpenLoadConfig wheel_c = SchedulerConfig(bench, SchedulerKind::kWheel);
  const OpenLoadConfig heap_c = SchedulerConfig(bench, SchedulerKind::kHeap);

  // Identity first: the wheel's result must match the heap oracle's, bucket
  // for bucket, before either wall clock means anything.
  const OpenLoadWorldResult wheel_r = RunOpenLoadWorld(wheel_c, 0, nullptr);
  const OpenLoadWorldResult heap_r = RunOpenLoadWorld(heap_c, 0, nullptr);
  SLED_CHECK(wheel_r == heap_r, "wheel diverged from heap oracle at %lld clients",
             static_cast<long long>(bench.clients));
  SLED_CHECK(wheel_r.clients == bench.clients && wheel_r.arrivals > bench.clients,
             "phase A underran its population");
  std::fprintf(stderr,
               "  identity ok: %lld clients, %lld arrivals, checksum %016llx (wheel == heap)\n",
               static_cast<long long>(wheel_r.clients), static_cast<long long>(wheel_r.arrivals),
               static_cast<unsigned long long>(wheel_r.checksum));

  const double wheel_us = BestWallMicros(wheel_c, bench.repeats, wheel_r);
  const double heap_us = BestWallMicros(heap_c, bench.repeats, heap_r);
  const double speedup = wheel_us > 0 ? heap_us / wheel_us : 0;
  const double wheel_meps =
      wheel_us > 0 ? static_cast<double>(wheel_r.arrivals) / wheel_us : 0;
  std::fprintf(stderr, "  wheel %.0f us (%.1f M events/s), heap %.0f us, speedup %.2fx\n",
               wheel_us, wheel_meps, heap_us, speedup);

  char block[512];
  std::snprintf(block, sizeof(block),
                "  \"wheel_1m\": {\"clients\": %lld, \"concurrent_timers\": %lld, "
                "\"events\": %lld, \"wheel_wall_us\": %.1f, \"heap_wall_us\": %.1f, "
                "\"wheel_events_per_us\": %.2f, \"identical\": 1, \"speedup\": %.2f},\n",
                static_cast<long long>(bench.clients), static_cast<long long>(bench.clients),
                static_cast<long long>(wheel_r.arrivals), wheel_us, heap_us, wheel_meps, speedup);
  return block;
}

struct Scenario {
  const char* name;
  ArrivalPattern pattern;
  StorageKind kind;
};

std::string ScenarioPhase(const LoopBenchConfig& bench) {
  const std::vector<Scenario> all = {
      {"poisson", ArrivalPattern::kPoisson, StorageKind::kDisk},
      {"burst", ArrivalPattern::kBurst, StorageKind::kDisk},
      {"diurnal", ArrivalPattern::kDiurnal, StorageKind::kDisk},
      {"poisson_nfs", ArrivalPattern::kPoisson, StorageKind::kNfs},
  };
  std::string json = "  \"scenarios\": {";
  bool first = true;
  for (const Scenario& s : all) {
    if (bench.only_pattern != nullptr && std::strcmp(bench.only_pattern, s.name) != 0) {
      continue;
    }
    OpenLoadConfig c;
    c.clients = bench.scenario_clients;
    c.worlds = 8;
    c.pattern = s.pattern;
    c.kind = s.kind;
    c.horizon_s = bench.horizon_s;
    c.seed = 99;
    const ScenarioResult r = RunOpenLoadScenario(c);
    SLED_CHECK(r.completions > 0, "scenario %s produced no completions", s.name);
    std::fprintf(stderr,
                 "  %-12s offered %.0f rps, achieved %.0f rps, p50 %.2f ms, p99 %.2f ms, "
                 "p999 %.2f ms\n",
                 s.name, r.offered_rps, r.achieved_rps,
                 static_cast<double>(r.latency.Quantile(0.50).nanos()) * 1e-6,
                 static_cast<double>(r.latency.Quantile(0.99).nanos()) * 1e-6,
                 static_cast<double>(r.latency.Quantile(0.999).nanos()) * 1e-6);
    json += first ? "\n    \"" : ",\n    \"";
    first = false;
    json += s.name;
    json += "\": {";
    json += ScenarioJson(r);
    json += "}";
  }
  json += "\n  }\n";
  return json;
}

void RunOpenLoopSuite() {
  const LoopBenchConfig bench = LoopBenchConfig::FromEnv();
  std::fprintf(stderr,
               "bench_openloop: %lld clients (phase A), %lld scenario clients, "
               "horizon %.1f s, best of %d\n",
               static_cast<long long>(bench.clients),
               static_cast<long long>(bench.scenario_clients), bench.horizon_s, bench.repeats);

  std::string json = "{\n";
  json += "  \"config\": {\"clients\": " + std::to_string(bench.clients) +
          ", \"scenario_clients\": " + std::to_string(bench.scenario_clients) +
          ", \"repeats\": " + std::to_string(bench.repeats) + "},\n";
  json += SchedulerPhase(bench);
  json += ScenarioPhase(bench);
  json += "}";
  PrintBenchMetrics("openloop", json);
}

}  // namespace
}  // namespace sled

int main() {
  sled::RunOpenLoopSuite();
  return 0;
}
