// Ablation: how kernel sequential readahead interacts with SLEDs reordering
// (DESIGN.md ablation #1). Sweeps the maximum readahead window for wc on a
// 64 MB NFS file with a warm cache.
//
// Expected: without SLEDs, readahead is the only thing standing between the
// application and per-page RPC latency, so shrinking the window is
// catastrophic. With SLEDs the cached portion needs no readahead at all and
// the uncached tail still streams, so sensitivity to the window is far
// smaller — SLEDs degrade more gracefully.
#include <cstdio>

#include "src/apps/wc.h"
#include "src/common/units.h"
#include "src/workload/experiment.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

double MeasureWc(int max_readahead_pages, bool use_sleds, uint64_t seed) {
  TestbedConfig config;
  config.kind = StorageKind::kNfs;
  config.seed = seed;
  config.max_readahead_pages = max_readahead_pages;
  config.min_readahead_pages = std::min(4, max_readahead_pages);
  Testbed tb = MakeTestbed(config);
  Process& gen = tb.kernel->CreateProcess("gen");
  Rng rng(seed);
  SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/file.txt", MiB(64), rng).ok(),
             "generation failed");
  tb.kernel->DropCaches();
  Rng run_rng(seed + 1);
  const MeasuredPoint point =
      RunWarmCacheSeries(tb, /*repeats=*/5, run_rng, nullptr, [&](SimKernel& k, Process& p) {
        WcOptions options;
        options.use_sleds = use_sleds;
        SLED_CHECK(WcApp::Run(k, p, "/data/file.txt", options).ok(), "wc failed");
      });
  return point.seconds.mean;
}

int Main() {
  std::printf("==== Ablation: kernel readahead window vs SLEDs (wc, NFS, 64 MB, warm) ====\n\n");
  std::printf("%-22s %14s %14s %10s\n", "max readahead (pages)", "with SLEDs", "without",
              "ratio");
  for (int window : {1, 2, 4, 8, 16, 32, 64}) {
    const double with = MeasureWc(window, true, 3000 + window);
    const double without = MeasureWc(window, false, 4000 + window);
    std::printf("%-22d %12.2f s %12.2f s %9.2fx\n", window, with, without, without / with);
  }
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
