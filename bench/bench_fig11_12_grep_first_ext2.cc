// Reproduces paper Figure 11 (grep -q, one randomly-placed match, ext2, warm
// cache) and Figure 12 (the derived speedup ratio).
//
// Expected shape: this is "the ideal benchmark for SLEDs". With SLEDs, the
// cached portion is searched first, so when the random match lands in cache
// the run does essentially no physical I/O; without SLEDs the scan starts at
// the head of the file, which the LRU cache has already evicted. Means
// diverge sharply above the cache size; the without-SLEDs error bars are
// large (high run-to-run variability); the ratio peaks around an order of
// magnitude or more near 1-2x the cache size.
#include "bench/bench_util.h"
#include "src/apps/grep.h"
#include "src/common/units.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

int Main() {
  const BenchParams params = BenchParams::FromEnv(PaperUnixSizes());
  const SweepResult sweep = RunFigureSweep(
      [](uint64_t seed) { return MakeUnixTestbed(StorageKind::kDisk, seed); },
      [](Testbed& tb, int64_t size, Rng& rng) -> std::function<void(SimKernel&, Process&, Rng&)> {
        Process& gen = tb.kernel->CreateProcess("gen");
        SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/file.txt", size, rng).ok(),
                   "generation failed");
        tb.kernel->DropCaches();
        // Move the single match to a fresh uniformly-random position before
        // every run ("a single match that was placed randomly in the test
        // file", §5.2).
        auto marker_offset = std::make_shared<int64_t>(-1);
        return [size, marker_offset](SimKernel& kernel, Process& p, Rng& run_rng) {
          const int64_t where = run_rng.Uniform(0, size - kGenLineLen);
          auto placed =
              MoveMarkerScrubbed(kernel, p, "/data/file.txt", *marker_offset, where, run_rng);
          SLED_CHECK(placed.ok(), "marker placement failed");
          *marker_offset = placed.value();
        };
      },
      [](SimKernel& kernel, Process& p, bool use_sleds) {
        GrepOptions options;
        options.use_sleds = use_sleds;
        options.quiet_first_match = true;
        auto r = GrepApp::Run(kernel, p, "/data/file.txt", std::string(kGrepMarker), options);
        SLED_CHECK(r.ok() && r->found, "grep -q failed to find the marker");
      },
      params, /*seed_base=*/11000);
  PrintFigure("Figure 11", "Time for ext2 grep with one match wo/w SLEDs", "Execution time (s)",
              sweep.time_points);
  PrintRatioFigure("Figure 12", "Time ratio of wo/w SLEDS for ext2 grep with one match",
                   sweep.time_points);
  PrintBenchMetrics("fig11_12", sweep.metrics_json);
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
