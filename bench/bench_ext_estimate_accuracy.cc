// Extension experiment: how good are the estimates? The whole premise of
// §3.3 (reporting latency to users) is that sleds_total_delivery_time is
// trustworthy *before* any data moves. Two checks:
//
// Part 1 — estimate vs measured full-file retrieval across devices and
// random cache states (the retrieval loop is a bare picker walk, so the
// comparison isolates the storage model from application CPU).
//
// Part 2 — the paper's §4.1 single-entry-per-device limitation: "for better
// accuracy, entries which account for the different bandwidths of different
// disk zones will be added in a future version [Van97]". We built that
// version: per-zone sleds_table rows. A file on the slow inner zone is
// mispredicted by the single-entry table and predicted correctly by the
// per-zone one.
#include <cmath>
#include <cstdio>

#include "src/common/units.h"
#include "src/fs/extent_file_system.h"
#include "src/sleds/delivery.h"
#include "src/sleds/picker.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

// Read the whole file in picker order; return measured elapsed.
Duration MeasurePickerRead(SimKernel& kernel, int fd, Process& p) {
  auto picker = SledsPicker::Create(kernel, p, fd, PickerOptions{}).value();
  std::vector<char> buf(static_cast<size_t>(64 * kKiB));
  const TimePoint t0 = kernel.clock().Now();
  while (true) {
    auto pick = picker->NextRead().value();
    if (pick.length == 0) {
      break;
    }
    (void)kernel.Lseek(p, fd, pick.offset, Whence::kSet);
    (void)kernel.Read(p, fd, std::span<char>(buf.data(), static_cast<size_t>(pick.length)));
  }
  return kernel.clock().Now() - t0;
}

void Part1() {
  std::printf("part 1: estimate vs measured, 24 MB file, random cache states\n");
  std::printf("  %-8s %12s %12s %9s\n", "device", "estimate", "measured", "est/meas");
  for (StorageKind kind : {StorageKind::kDisk, StorageKind::kCdRom, StorageKind::kNfs}) {
    double est_sum = 0.0;
    double meas_sum = 0.0;
    for (int trial = 0; trial < 4; ++trial) {
      Testbed tb = MakeUnixTestbed(kind, 700 + trial);
      Process& gen = tb.kernel->CreateProcess("gen");
      Rng rng(700 + trial);
      SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/f.txt", MiB(24), rng).ok(),
                 "gen failed");
      tb.FinishMastering();
      tb.kernel->DropCaches();
      Process& p = tb.kernel->CreateProcess("reader");
      const int fd = tb.kernel->Open(p, "/data/f.txt").value();
      // Random cache state: touch a few random page ranges.
      char b;
      for (int r = 0; r < 3; ++r) {
        const int64_t first = rng.Uniform(0, PagesFor(MiB(24)) - 1);
        for (int64_t page = first; page < std::min(first + rng.Uniform(64, 512),
                                                   PagesFor(MiB(24)));
             ++page) {
          (void)tb.kernel->Lseek(p, fd, page * kPageSize, Whence::kSet);
          (void)tb.kernel->Read(p, fd, std::span<char>(&b, 1));
        }
      }
      const Duration estimate =
          TotalDeliveryTime(*tb.kernel, p, fd, AttackPlan::kBest).value();
      const Duration measured = MeasurePickerRead(*tb.kernel, fd, p);
      (void)tb.kernel->Close(p, fd);
      est_sum += estimate.ToSeconds();
      meas_sum += measured.ToSeconds();
    }
    std::printf("  %-8s %10.2f s %10.2f s %9.2f\n",
                std::string(StorageKindName(kind)).c_str(), est_sum / 4, meas_sum / 4,
                est_sum / meas_sum);
  }
  std::printf(
      "  (estimates slightly undershoot: they exclude syscall and memory-copy\n"
      "   time, exactly like the paper's latency+size/bandwidth formula)\n\n");
}

void Part2() {
  std::printf("part 2: single-entry vs per-zone sleds_table (%s)\n",
              "file on the slow inner zone of a 512 MB, 8-zone disk");
  std::printf("  %-22s %12s %12s %9s\n", "table", "estimate", "measured", "est/meas");
  for (bool per_zone : {false, true}) {
    KernelConfig kc;
    kc.cache.capacity_pages = 2048;
    SimKernel kernel(kc);
    DiskDeviceConfig dc;
    dc.capacity_bytes = 512LL * kMiB;
    dc.num_zones = 8;
    dc.outer_bandwidth_bps = 12.0e6;  // exaggerate the zone spread
    dc.inner_bandwidth_bps = 5.0e6;
    SLED_CHECK(kernel
                   .Mount("/", std::make_unique<ExtFs>("disk",
                                                       std::make_unique<DiskDevice>(dc),
                                                       ExtentAllocatorConfig{}, per_zone))
                   .ok(),
               "mount failed");
    Process& p = kernel.CreateProcess("user");
    // Ballast fills the outer 7 zones; the test file lands on the innermost.
    const int bfd = kernel.Create(p, "/ballast").value();
    SLED_CHECK(kernel.Ftruncate(p, bfd, 7 * (512LL * kMiB / 8)).ok(), "ballast failed");
    (void)kernel.Close(p, bfd);
    const int fd = kernel.Create(p, "/inner.dat").value();
    const std::string data(static_cast<size_t>(MiB(24)), 'i');
    SLED_CHECK(kernel.Write(p, fd, std::span<const char>(data.data(), data.size())).ok(),
               "write failed");
    kernel.DropCaches();
    const Duration estimate = TotalDeliveryTime(kernel, p, fd, AttackPlan::kBest).value();
    const Duration measured = MeasurePickerRead(kernel, fd, p);
    (void)kernel.Close(p, fd);
    std::printf("  %-22s %10.2f s %10.2f s %9.2f\n",
                per_zone ? "per-zone (Van97)" : "single entry (paper)",
                estimate.ToSeconds(), measured.ToSeconds(),
                estimate.ToSeconds() / measured.ToSeconds());
  }
  std::printf(
      "\nThe single-entry table prices every byte at the device average and\n"
      "underestimates inner-zone files; the per-zone table prices the zone the\n"
      "data actually occupies.\n");
}

int Main() {
  std::printf("==== Extension: delivery-estimate accuracy ====\n\n");
  Part1();
  Part2();
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
