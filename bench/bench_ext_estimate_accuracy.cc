// Extension experiment: how good are the estimates? The whole premise of
// §3.3 (reporting latency to users) is that sleds_total_delivery_time is
// trustworthy *before* any data moves. Two checks:
//
// Part 1 — estimate vs measured full-file retrieval across devices and
// random cache states (the retrieval loop is a bare picker walk, so the
// comparison isolates the storage model from application CPU).
//
// Part 2 — the paper's §4.1 single-entry-per-device limitation: "for better
// accuracy, entries which account for the different bandwidths of different
// disk zones will be added in a future version [Van97]". We built that
// version: per-zone sleds_table rows. A file on the slow inner zone is
// mispredicted by the single-entry table and predicted correctly by the
// per-zone one.
// Part 3 — raw device-model fidelity: for each device, the mean absolute
// percentage error (MAPE) of Estimate() against the access it prices, over a
// random single-op workload. Deterministic models score 0; stochastic models
// score their irreducible spread (the estimate is the mean, see the
// "Estimate is the expectation of Access" contract in device.h). The MAPE
// table is emitted as BENCH_estimate_accuracy.json and gated by
// scripts/perf_gate.py --accuracy against bench/baselines.json.
#include <cmath>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/device/cdrom_device.h"
#include "src/device/disk_device.h"
#include "src/device/memory_device.h"
#include "src/device/network_device.h"
#include "src/device/ssd_device.h"
#include "src/device/tape_device.h"
#include "src/fs/extent_file_system.h"
#include "src/sleds/delivery.h"
#include "src/sleds/picker.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

// Read the whole file in picker order; return measured elapsed.
Duration MeasurePickerRead(SimKernel& kernel, int fd, Process& p) {
  auto picker = SledsPicker::Create(kernel, p, fd, PickerOptions{}).value();
  std::vector<char> buf(static_cast<size_t>(64 * kKiB));
  const TimePoint t0 = kernel.clock().Now();
  while (true) {
    auto pick = picker->NextRead().value();
    if (pick.length == 0) {
      break;
    }
    (void)kernel.Lseek(p, fd, pick.offset, Whence::kSet);
    (void)kernel.Read(p, fd, std::span<char>(buf.data(), static_cast<size_t>(pick.length)));
  }
  return kernel.clock().Now() - t0;
}

// device name -> est/meas ratio for the end-to-end retrievals of part 1.
std::map<std::string, double> Part1() {
  std::map<std::string, double> ratios;
  std::printf("part 1: estimate vs measured, 24 MB file, random cache states\n");
  std::printf("  %-8s %12s %12s %9s\n", "device", "estimate", "measured", "est/meas");
  for (StorageKind kind : {StorageKind::kDisk, StorageKind::kCdRom, StorageKind::kNfs}) {
    double est_sum = 0.0;
    double meas_sum = 0.0;
    for (int trial = 0; trial < 4; ++trial) {
      Testbed tb = MakeUnixTestbed(kind, 700 + trial);
      Process& gen = tb.kernel->CreateProcess("gen");
      Rng rng(700 + trial);
      SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/f.txt", MiB(24), rng).ok(),
                 "gen failed");
      tb.FinishMastering();
      tb.kernel->DropCaches();
      Process& p = tb.kernel->CreateProcess("reader");
      const int fd = tb.kernel->Open(p, "/data/f.txt").value();
      // Random cache state: touch a few random page ranges.
      char b;
      for (int r = 0; r < 3; ++r) {
        const int64_t first = rng.Uniform(0, PagesFor(MiB(24)) - 1);
        for (int64_t page = first; page < std::min(first + rng.Uniform(64, 512),
                                                   PagesFor(MiB(24)));
             ++page) {
          (void)tb.kernel->Lseek(p, fd, page * kPageSize, Whence::kSet);
          (void)tb.kernel->Read(p, fd, std::span<char>(&b, 1));
        }
      }
      const Duration estimate =
          TotalDeliveryTime(*tb.kernel, p, fd, AttackPlan::kBest).value();
      const Duration measured = MeasurePickerRead(*tb.kernel, fd, p);
      (void)tb.kernel->Close(p, fd);
      est_sum += estimate.ToSeconds();
      meas_sum += measured.ToSeconds();
    }
    std::printf("  %-8s %10.2f s %10.2f s %9.2f\n",
                std::string(StorageKindName(kind)).c_str(), est_sum / 4, meas_sum / 4,
                est_sum / meas_sum);
    ratios[std::string(StorageKindName(kind))] = est_sum / meas_sum;
  }
  std::printf(
      "  (estimates slightly undershoot: they exclude syscall and memory-copy\n"
      "   time, exactly like the paper's latency+size/bandwidth formula)\n\n");
  return ratios;
}

void Part2() {
  std::printf("part 2: single-entry vs per-zone sleds_table (%s)\n",
              "file on the slow inner zone of a 512 MB, 8-zone disk");
  std::printf("  %-22s %12s %12s %9s\n", "table", "estimate", "measured", "est/meas");
  for (bool per_zone : {false, true}) {
    KernelConfig kc;
    kc.cache.capacity_pages = 2048;
    SimKernel kernel(kc);
    DiskDeviceConfig dc;
    dc.capacity_bytes = 512LL * kMiB;
    dc.num_zones = 8;
    dc.outer_bandwidth_bps = 12.0e6;  // exaggerate the zone spread
    dc.inner_bandwidth_bps = 5.0e6;
    SLED_CHECK(kernel
                   .Mount("/", std::make_unique<ExtFs>("disk",
                                                       std::make_unique<DiskDevice>(dc),
                                                       ExtentAllocatorConfig{}, per_zone))
                   .ok(),
               "mount failed");
    Process& p = kernel.CreateProcess("user");
    // Ballast fills the outer 7 zones; the test file lands on the innermost.
    const int bfd = kernel.Create(p, "/ballast").value();
    SLED_CHECK(kernel.Ftruncate(p, bfd, 7 * (512LL * kMiB / 8)).ok(), "ballast failed");
    (void)kernel.Close(p, bfd);
    const int fd = kernel.Create(p, "/inner.dat").value();
    const std::string data(static_cast<size_t>(MiB(24)), 'i');
    SLED_CHECK(kernel.Write(p, fd, std::span<const char>(data.data(), data.size())).ok(),
               "write failed");
    kernel.DropCaches();
    const Duration estimate = TotalDeliveryTime(kernel, p, fd, AttackPlan::kBest).value();
    const Duration measured = MeasurePickerRead(kernel, fd, p);
    (void)kernel.Close(p, fd);
    std::printf("  %-22s %10.2f s %10.2f s %9.2f\n",
                per_zone ? "per-zone (Van97)" : "single entry (paper)",
                estimate.ToSeconds(), measured.ToSeconds(),
                estimate.ToSeconds() / measured.ToSeconds());
  }
  std::printf(
      "\nThe single-entry table prices every byte at the device average and\n"
      "underestimates inner-zone files; the per-zone table prices the zone the\n"
      "data actually occupies.\n");
}

// Mean absolute percentage error of Estimate/EstimateWrite against the
// access it priced, over `n` random ops. `write_frac` mixes writes in (the
// SSD's GC debt only moves under writes). `est_bias_s` is subtracted from
// every estimate; passing the device's per-request overhead recreates the
// pre-fix estimator (which forgot that term) on identical draws.
double DeviceMape(StorageDevice& dev, uint64_t seed, double write_frac, int n = 300,
                  double est_bias_s = 0.0) {
  Rng rng(seed);
  const int64_t len = 64 * kKiB;
  double sum = 0.0;
  int64_t pos = 0;
  for (int i = 0; i < n; ++i) {
    // Alternate sequential continuation and random jump: real retrievals are
    // mostly streaming with occasional repositions, and the deterministic
    // per-op terms (overhead, transfer) dominate the sequential half.
    const int64_t off =
        i % 2 == 0 ? std::min(pos, dev.capacity_bytes() - len)
                   : PageFloor(rng.Uniform(0, dev.capacity_bytes() - len));
    const bool writing = rng.Bernoulli(write_frac);
    const double est =
        (writing ? dev.EstimateWrite(off, len) : dev.Estimate(off, len)).ToSeconds() - est_bias_s;
    const double meas =
        (writing ? dev.Write(off, len) : dev.Read(off, len)).value().ToSeconds();
    sum += std::abs(meas - est) / meas;
    pos = off + len;
  }
  return sum / n;
}

// name -> MAPE for every device model, random 64 KiB ops. For disk and nfs
// the pre-fix estimator (missing per_request_overhead) is replayed on the
// same draws under the "<name>_prefix" key to quantify the fix.
std::map<std::string, double> Part3() {
  std::printf("\npart 3: raw device-model MAPE, 300 64 KiB ops, sequential/random mix\n");
  std::printf("  %-8s %8s %10s   %s\n", "device", "MAPE", "(pre-fix)", "irreducible term");
  std::map<std::string, double> mape;
  auto row = [&](const char* name, double m, double prefix, const char* note) {
    mape[name] = m;
    if (prefix > 0.0) {
      mape[std::string(name) + "_prefix"] = prefix;
      std::printf("  %-8s %7.2f%% %9.2f%%   %s\n", name, m * 100.0, prefix * 100.0, note);
    } else {
      std::printf("  %-8s %7.2f%% %9s   %s\n", name, m * 100.0, "-", note);
    }
  };
  MemoryDevice memory(MemoryDeviceConfig{});
  row("memory", DeviceMape(memory, 31, 0.0), 0.0, "none (deterministic)");
  DiskDeviceConfig disk_config;
  DiskDevice disk(disk_config);
  DiskDevice disk_replay(disk_config);
  row("disk", DeviceMape(disk, 32, 0.0),
      DeviceMape(disk_replay, 32, 0.0, 300, disk_config.per_request_overhead.ToSeconds()),
      "rotational delay, uniform [0, period)");
  CdRomDevice cdrom(CdRomDeviceConfig{});
  row("cdrom", DeviceMape(cdrom, 33, 0.0), 0.0, "settle jitter, +/-10% of the seek");
  NetworkDeviceConfig nfs_config;
  NetworkDevice nfs(nfs_config);
  NetworkDevice nfs_replay(nfs_config);
  row("nfs", DeviceMape(nfs, 34, 0.0),
      DeviceMape(nfs_replay, 34, 0.0, 300, nfs_config.per_request_overhead.ToSeconds()),
      "latency jitter, +/-15% of first byte");
  SsdDeviceConfig sc;
  sc.capacity_bytes = 256LL * kMiB;  // small: GC debt in play quickly
  SsdDevice ssd(sc);
  row("ssd", DeviceMape(ssd, 35, 0.5), 0.0, "none (GC debt is priced exactly)");
  TapeDevice tape(TapeDeviceConfig{});
  row("tape", DeviceMape(tape, 36, 0.0, 60), 0.0, "none (locate arithmetic)");
  std::printf(
      "  (stochastic models carry their irreducible spread; the estimate is\n"
      "   the mean, so the signed error averages out even where MAPE > 0)\n");
  return mape;
}

int Main() {
  std::printf("==== Extension: delivery-estimate accuracy ====\n\n");
  const std::map<std::string, double> ratios = Part1();
  Part2();
  const std::map<std::string, double> mape = Part3();

  // Machine-readable block for the accuracy gate (perf_gate.py --accuracy):
  // every workload with an "error" field is gated lower-is-better against
  // bench/baselines.json. The "*_prefix" entries replay the pre-fix
  // estimator (per_request_overhead missing) on identical draws; they are
  // emitted as ungated "reference" values recording the improvement.
  std::vector<std::string> entries;
  char line[160];
  for (const auto& [name, m] : mape) {
    const bool reference = name.size() > 7 && name.rfind("_prefix") == name.size() - 7;
    std::snprintf(line, sizeof(line), "  \"mape_%s\": {\"%s\": %.6f}", name.c_str(),
                  reference ? "reference" : "error", m);
    entries.emplace_back(line);
  }
  for (const auto& [name, r] : ratios) {
    std::snprintf(line, sizeof(line), "  \"bias_%s\": {\"error\": %.6f}", name.c_str(),
                  std::abs(1.0 - r));
    entries.emplace_back(line);
  }
  std::string json = "{\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    json += entries[i] + (i + 1 < entries.size() ? ",\n" : "\n");
  }
  json += "}";
  PrintBenchMetrics("estimate_accuracy", json);
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
