// Extension experiment: locate-aware tape scheduling inside the SLEDs
// library (the Hillyer/Silberschatz & Sandstå/Midstraum line the paper cites
// in §2 as "good candidates to be incorporated into SLEDs libraries").
//
// Part 1: raw scheduling quality — total locate time of N scattered reads on
// one serpentine tape, FIFO vs greedy nearest-neighbour.
// Part 2: end-to-end — HSM batch recall of files interleaved across tapes,
// argument order (one robot exchange per alternation) vs scheduled
// (group-by-tape + locate order).
#include <cstdio>
#include <numeric>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/device/tape_schedule.h"
#include "src/fs/hsm_fs.h"

namespace sled {
namespace {

void Part1() {
  std::printf("part 1: total locate time, one tape, scattered 8 MB reads\n");
  std::printf("  %-10s %14s %14s %9s\n", "requests", "FIFO", "scheduled", "ratio");
  TapeDeviceConfig config;
  for (int n : {4, 8, 16, 32, 64}) {
    Rng rng(100 + n);
    std::vector<TapeRequest> requests;
    for (int i = 0; i < n; ++i) {
      requests.push_back({rng.Uniform(0, config.capacity_bytes - MiB(16)), MiB(8)});
    }
    std::vector<size_t> fifo(requests.size());
    std::iota(fifo.begin(), fifo.end(), 0);
    const Duration fifo_cost = TotalLocateTime(config, 0, requests, fifo);
    const Duration sched_cost =
        TotalLocateTime(config, 0, requests, ScheduleTapeReads(config, 0, requests));
    std::printf("  %-10d %12.1f s %12.1f s %8.2fx\n", n, fifo_cost.ToSeconds(),
                sched_cost.ToSeconds(), fifo_cost.ToSeconds() / sched_cost.ToSeconds());
  }
}

void Part2() {
  std::printf("\npart 2: HSM batch recall, 16 x 8 MB files interleaved across 4 tapes\n");
  auto build = [] {
    HsmFsConfig config;
    config.staging_disk.capacity_bytes = 4LL * 1000 * 1000 * 1000;
    config.num_tapes = 4;
    config.num_drives = 1;
    auto fs = std::make_unique<HsmFs>("hsm", config);
    std::vector<InodeNum> inos;
    const std::string data(static_cast<size_t>(MiB(8)), 'd');
    for (int i = 0; i < 16; ++i) {
      const InodeNum ino = fs->CreateFile(fs->root(), "f" + std::to_string(i)).value();
      SLED_CHECK(fs->WriteBytes(ino, 0, std::span<const char>(data.data(), data.size())).ok(),
                 "write failed");
      inos.push_back(ino);
    }
    for (InodeNum ino : inos) {
      SLED_CHECK(fs->Migrate(ino).ok(), "migrate failed");
    }
    return std::make_pair(std::move(fs), inos);
  };
  // Migration spreads files round-robin across tapes, so creation order
  // already alternates tapes maximally — the FIFO worst case.
  auto [fs_fifo, inos1] = build();
  const int64_t fifo_exch_before = fs_fifo->changer().exchanges();
  const Duration fifo = fs_fifo->RecallBatch(inos1, /*scheduled=*/false).value();
  auto [fs_sched, inos2] = build();
  const int64_t sched_exch_before = fs_sched->changer().exchanges();
  const Duration sched = fs_sched->RecallBatch(inos2, /*scheduled=*/true).value();
  std::printf("  argument order: %8.1f s (%lld robot exchanges during recall)\n",
              fifo.ToSeconds(),
              static_cast<long long>(fs_fifo->changer().exchanges() - fifo_exch_before));
  std::printf("  scheduled:      %8.1f s (%lld robot exchanges during recall)\n",
              sched.ToSeconds(),
              static_cast<long long>(fs_sched->changer().exchanges() - sched_exch_before));
  std::printf("  speedup: %.1fx\n", fifo.ToSeconds() / sched.ToSeconds());
}

int Main() {
  std::printf("==== Extension: locate-aware tape scheduling ====\n\n");
  Part1();
  Part2();
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
