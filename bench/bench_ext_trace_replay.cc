// Extension experiment: trace-driven device sensitivity. Capture one linear
// scan's I/O trace, then replay it — verbatim and SLEDs-reordered — against
// every storage kind with a warm (tail-cached) file. This is the
// "scripts and other utilities built around this concept" from the paper's
// conclusion: the access pattern is fixed once; SLEDs adapt it to whatever
// storage it lands on.
// The closed-loop replay above answers "how long does the whole pattern
// take"; the open-loop section after it replays the same recorded byte ranges
// as request payloads under Poisson arrivals (src/openload), where the
// question becomes "what latency distribution do concurrent clients see" —
// p99/p999 and the offered-vs-achieved gap, numbers a closed-loop replay
// cannot produce because it never queues.
#include <cstdio>

#include "src/common/units.h"
#include "src/openload/engine.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"
#include "src/workload/trace.h"

namespace sled {
namespace {

constexpr int64_t kFileMb = 60;

Trace CaptureScan() {
  Testbed tb = MakeUnixTestbed(StorageKind::kDisk, 90);
  Process& gen = tb.kernel->CreateProcess("gen");
  Rng rng(90);
  SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/f.txt", MiB(kFileMb), rng).ok(),
             "gen failed");
  Process& p = tb.kernel->CreateProcess("capture");
  TraceRecorder rec(*tb.kernel, p);
  const int fd = rec.Open("/data/f.txt").value();
  std::vector<char> buf(static_cast<size_t>(64 * kKiB));
  while (rec.Read(fd, std::span<char>(buf.data(), buf.size())).value() > 0) {
  }
  SLED_CHECK(rec.Close(fd).ok(), "close failed");
  return rec.TakeTrace();
}

int Main() {
  std::printf("==== Extension: trace-driven replay across devices ====\n\n");
  const Trace trace = CaptureScan();
  const TraceStats stats = SummarizeTrace(trace);
  std::printf("captured trace: %lld events, %lld MB read\n\n",
              static_cast<long long>(stats.events),
              static_cast<long long>(stats.bytes_read / kMiB));
  std::printf("%-8s %14s %14s %9s\n", "device", "verbatim", "SLEDs-reordered", "ratio");
  for (StorageKind kind : {StorageKind::kDisk, StorageKind::kCdRom, StorageKind::kNfs}) {
    double seconds[2] = {0, 0};
    for (bool reorder : {false, true}) {
      Testbed tb = MakeUnixTestbed(kind, reorder ? 91 : 92);
      Process& gen = tb.kernel->CreateProcess("gen");
      Rng rng(93);
      SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/f.txt", MiB(kFileMb), rng).ok(),
                 "gen failed");
      tb.FinishMastering();
      tb.kernel->DropCaches();
      // Warm pass (verbatim) to put the system in the Figure 3 state.
      SLED_CHECK(ReplayTrace(*tb.kernel, trace).ok(), "warm replay failed");
      ReplayOptions options;
      options.reorder_reads_with_sleds = reorder;
      auto r = ReplayTrace(*tb.kernel, trace, options);
      SLED_CHECK(r.ok(), "replay failed");
      seconds[reorder ? 1 : 0] = r->elapsed.ToSeconds();
    }
    std::printf("%-8s %12.2f s %12.2f s %8.2fx\n",
                std::string(StorageKindName(kind)).c_str(), seconds[0], seconds[1],
                seconds[0] / seconds[1]);
  }
  std::printf(
      "\nOne recorded access pattern, three devices: the SLEDs re-plan converts\n"
      "the same workload to cached-first order everywhere, with the gain scaling\n"
      "by the device's cost of refetching the evicted portion.\n");

  // Open-loop replay: the captured byte ranges become the request stream of
  // concurrent Poisson clients (ArrivalPattern::kTrace) against each device.
  const std::vector<ReadOp> ops = ExtractReadOps(trace);
  SLED_CHECK(!ops.empty(), "trace produced no read ops");
  std::printf("\n==== open-loop replay: %lld trace reads as concurrent request stream ====\n\n",
              static_cast<long long>(ops.size()));
  std::printf("%-8s %12s %12s %12s %12s %12s\n", "device", "offered", "achieved", "p50", "p99",
              "p999");
  for (StorageKind kind : {StorageKind::kDisk, StorageKind::kCdRom, StorageKind::kNfs}) {
    OpenLoadConfig c;
    c.clients = 2000;
    c.worlds = 4;
    c.pattern = ArrivalPattern::kTrace;
    c.trace_ops = &ops;
    c.kind = kind;
    c.file_mb = kFileMb;
    c.horizon_s = 4.0;
    c.seed = 94;
    const ScenarioResult r = RunOpenLoadScenario(c);
    SLED_CHECK(r.completions > 0, "open-loop replay produced no completions");
    std::printf("%-8s %8.0f rps %8.0f rps %9.2f ms %9.2f ms %9.2f ms\n",
                std::string(StorageKindName(kind)).c_str(), r.offered_rps, r.achieved_rps,
                static_cast<double>(r.latency.Quantile(0.50).nanos()) * 1e-6,
                static_cast<double>(r.latency.Quantile(0.99).nanos()) * 1e-6,
                static_cast<double>(r.latency.Quantile(0.999).nanos()) * 1e-6);
  }
  std::printf(
      "\nSame recorded reads, open-loop: arrival rate is calibrated to the\n"
      "device's own service capacity, so the tail percentiles isolate queueing\n"
      "and device variance rather than raw device speed.\n");
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
