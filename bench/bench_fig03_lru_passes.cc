// Reproduces paper Figure 3: the movement of a five-block file through a
// three-frame LRU cache during two linear passes — and the SLEDs-ordered
// second pass that motivates the whole system.
#include <cstdio>
#include <string>
#include <vector>

#include "src/cache/page_cache.h"

namespace sled {
namespace {

std::string CacheState(const PageCache& cache, int frames) {
  // Render frame contents as block numbers (1-based, like the figure), 'e'
  // for empty.
  std::string out;
  std::vector<int64_t> resident = cache.ResidentPagesOf(1);
  for (int i = 0; i < frames; ++i) {
    if (i < static_cast<int>(resident.size())) {
      out += std::to_string(resident[static_cast<size_t>(i)] + 1);
    } else {
      out += 'e';
    }
    out += ' ';
  }
  return out;
}

int Main() {
  constexpr int kFrames = 3;
  constexpr int kBlocks = 5;
  std::printf("==== Figure 3: two linear passes, 5-block file, 3-frame LRU cache ====\n\n");

  PageCache cache({.capacity_pages = kFrames});
  int64_t device_reads = 0;
  auto access = [&](int64_t block) {
    if (!cache.Touch({1, block})) {
      ++device_reads;
      cache.Insert({1, block}, false);
    }
  };

  std::printf("%-28s %-12s %s\n", "step", "cache", "device reads");
  std::printf("%-28s %-12s %lld\n", "before first pass", CacheState(cache, kFrames).c_str(),
              static_cast<long long>(device_reads));
  for (int64_t b = 0; b < kBlocks; ++b) {
    access(b);
    std::printf("first pass: read block %lld   %-12s %lld\n", static_cast<long long>(b + 1),
                CacheState(cache, kFrames).c_str(), static_cast<long long>(device_reads));
  }
  const int64_t after_first = device_reads;
  for (int64_t b = 0; b < kBlocks; ++b) {
    access(b);
    std::printf("second pass: read block %lld  %-12s %lld\n", static_cast<long long>(b + 1),
                CacheState(cache, kFrames).c_str(), static_cast<long long>(device_reads));
  }
  std::printf("\nLRU second pass refetched %lld of %d blocks: no reuse at all.\n",
              static_cast<long long>(device_reads - after_first), kBlocks);

  // The SLEDs-ordered second pass: cached tail first (blocks 3,4,5), then
  // the evicted head (1,2).
  PageCache cache2({.capacity_pages = kFrames});
  int64_t reads2 = 0;
  auto access2 = [&](int64_t block) {
    if (!cache2.Touch({1, block})) {
      ++reads2;
      cache2.Insert({1, block}, false);
    }
  };
  for (int64_t b = 0; b < kBlocks; ++b) {
    access2(b);
  }
  const int64_t after_first2 = reads2;
  std::printf("\nSLEDs-ordered second pass (tail first):\n");
  for (int64_t b : {2, 3, 4, 0, 1}) {
    access2(b);
    std::printf("read block %lld              %-12s %lld\n", static_cast<long long>(b + 1),
                CacheState(cache2, kFrames).c_str(), static_cast<long long>(reads2));
  }
  std::printf("\nSLEDs second pass fetched only %lld of %d blocks from the device.\n",
              static_cast<long long>(reads2 - after_first2), kBlocks);
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
