// Reproduces paper Figure 3: the movement of a five-block file through a
// three-frame LRU cache during two linear passes — and the SLEDs-ordered
// second pass that motivates the whole system.
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cache/page_cache.h"
#include "src/common/units.h"
#include "src/workload/testbed.h"

namespace sled {
namespace {

std::string CacheState(const PageCache& cache, int frames) {
  // Render frame contents as block numbers (1-based, like the figure), 'e'
  // for empty.
  std::string out;
  std::vector<int64_t> resident = cache.ResidentPagesOf(1);
  for (int i = 0; i < frames; ++i) {
    if (i < static_cast<int>(resident.size())) {
      out += std::to_string(resident[static_cast<size_t>(i)] + 1);
    } else {
      out += 'e';
    }
    out += ' ';
  }
  return out;
}

int Main() {
  constexpr int kFrames = 3;
  constexpr int kBlocks = 5;
  std::printf("==== Figure 3: two linear passes, 5-block file, 3-frame LRU cache ====\n\n");

  PageCache cache({.capacity_pages = kFrames});
  int64_t device_reads = 0;
  auto access = [&](int64_t block) {
    if (!cache.Touch({1, block})) {
      ++device_reads;
      cache.Insert({1, block}, false);
    }
  };

  std::printf("%-28s %-12s %s\n", "step", "cache", "device reads");
  std::printf("%-28s %-12s %lld\n", "before first pass", CacheState(cache, kFrames).c_str(),
              static_cast<long long>(device_reads));
  for (int64_t b = 0; b < kBlocks; ++b) {
    access(b);
    std::printf("first pass: read block %lld   %-12s %lld\n", static_cast<long long>(b + 1),
                CacheState(cache, kFrames).c_str(), static_cast<long long>(device_reads));
  }
  const int64_t after_first = device_reads;
  for (int64_t b = 0; b < kBlocks; ++b) {
    access(b);
    std::printf("second pass: read block %lld  %-12s %lld\n", static_cast<long long>(b + 1),
                CacheState(cache, kFrames).c_str(), static_cast<long long>(device_reads));
  }
  std::printf("\nLRU second pass refetched %lld of %d blocks: no reuse at all.\n",
              static_cast<long long>(device_reads - after_first), kBlocks);

  // The SLEDs-ordered second pass: cached tail first (blocks 3,4,5), then
  // the evicted head (1,2).
  PageCache cache2({.capacity_pages = kFrames});
  int64_t reads2 = 0;
  auto access2 = [&](int64_t block) {
    if (!cache2.Touch({1, block})) {
      ++reads2;
      cache2.Insert({1, block}, false);
    }
  };
  for (int64_t b = 0; b < kBlocks; ++b) {
    access2(b);
  }
  const int64_t after_first2 = reads2;
  std::printf("\nSLEDs-ordered second pass (tail first):\n");
  for (int64_t b : {2, 3, 4, 0, 1}) {
    access2(b);
    std::printf("read block %lld              %-12s %lld\n", static_cast<long long>(b + 1),
                CacheState(cache2, kFrames).c_str(), static_cast<long long>(reads2));
  }
  std::printf("\nSLEDs second pass fetched only %lld of %d blocks from the device.\n",
              static_cast<long long>(reads2 - after_first2), kBlocks);

  // The same access pattern through the full simulated kernel (3-page cache,
  // readahead disabled so each block is one demand fetch), so this bench also
  // emits the standard machine-readable metrics block.
  TestbedConfig cfg;
  cfg.kind = StorageKind::kDisk;
  cfg.cache_pages = kFrames;
  cfg.min_readahead_pages = 1;
  cfg.max_readahead_pages = 1;
  Testbed tb = MakeTestbed(cfg);
  SimKernel& kernel = *tb.kernel;
  Process& p = kernel.CreateProcess("fig03");
  std::vector<char> buf(kPageSize, 'x');
  int fd = kernel.Create(p, "/data/fig03").value();
  for (int64_t b = 0; b < kBlocks; ++b) {
    (void)kernel.Write(p, fd, std::span<const char>(buf.data(), buf.size()));
  }
  (void)kernel.Close(p, fd);
  kernel.DropCaches();
  fd = kernel.Open(p, "/data/fig03").value();
  auto read_block = [&](int64_t block) {
    (void)kernel.Lseek(p, fd, block * kPageSize, Whence::kSet);
    (void)kernel.Read(p, fd, std::span<char>(buf.data(), buf.size()));
  };
  for (int64_t b = 0; b < kBlocks; ++b) {
    read_block(b);  // first pass
  }
  for (int64_t b = 0; b < kBlocks; ++b) {
    read_block(b);  // LRU-hostile second pass
  }
  for (int64_t b : {2, 3, 4, 0, 1}) {
    read_block(b);  // SLEDs-ordered third pass
  }
  (void)kernel.Close(p, fd);
  PrintBenchMetrics("fig03", kernel.obs().MetricsJson());
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
