// I/O scheduler benchmark: a mixed multi-process workload (four sequential
// readers over files in distinct disk regions plus one streaming writer) run
// under each I/O engine mode. FIFO dispatch services the interleaved arrival
// order and repositions the head on nearly every request; C-LOOK batches the
// requests of one region (demand + deepening readahead) before sweeping on,
// and coalescing merges adjacent requests into single device transfers.
//
// Expected shape: elevator completes the same page set with >= 1.5x fewer
// head repositions than FIFO and finishes in less simulated time.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/device/device.h"
#include "src/fs/vfs.h"
#include "src/workload/testbed.h"

namespace sled {
namespace {

constexpr int kReaders = 4;
constexpr int64_t kFileBytes = 8 * MiB(1);
constexpr int64_t kChunkBytes = 64 * 1024;

struct ModeResult {
  std::string name;
  double seconds = 0;
  int64_t repositions = 0;
  int64_t device_reads = 0;
  int64_t device_writes = 0;
  int64_t pages_paged_in = 0;
  int64_t merged = 0;
  int64_t batches = 0;
  int64_t max_depth = 0;
};

ModeResult RunMode(IoMode mode, const std::string& name) {
  TestbedConfig config;
  config.kind = StorageKind::kDisk;
  config.cache_pages = 2048;  // 8 MiB cache vs 40 MiB touched: forced eviction
  config.io.mode = mode;
  config.seed = 42;
  Testbed tb = MakeTestbed(config);
  SimKernel& k = *tb.kernel;

  // Lay out the reader files contiguously, each in its own disk region.
  Process& gen = k.CreateProcess("gen");
  const std::string block(kChunkBytes, 'x');
  for (int i = 0; i < kReaders; ++i) {
    const int fd = k.Create(gen, "/data/f" + std::to_string(i)).value();
    for (int64_t off = 0; off < kFileBytes; off += kChunkBytes) {
      SLED_CHECK(k.Write(gen, fd, std::span<const char>(block.data(), block.size())).ok(),
                 "setup write failed");
    }
    SLED_CHECK(k.Close(gen, fd).ok(), "close failed");
  }
  k.DropCaches();

  // Exclude setup I/O from the measurement.
  StorageDevice* dev = k.vfs().FsById(tb.data_fs_id)->PrimaryDevice();
  dev->ResetStats();
  const TimePoint start = k.clock().Now();

  std::vector<Process*> readers;
  std::vector<int> fds;
  for (int i = 0; i < kReaders; ++i) {
    Process& p = k.CreateProcess("reader" + std::to_string(i));
    readers.push_back(&p);
    fds.push_back(k.Open(p, "/data/f" + std::to_string(i)).value());
  }
  Process& writer = k.CreateProcess("writer");
  const int wfd = k.Create(writer, "/data/out").value();

  // Round-robin: each reader pulls one chunk per round while the writer
  // streams one chunk, so request arrivals alternate between distant regions.
  std::vector<char> buf(kChunkBytes);
  int64_t written = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int i = 0; i < kReaders; ++i) {
      const int64_t n = k.Read(*readers[i], fds[i], std::span<char>(buf.data(), buf.size())).value();
      progress = progress || n > 0;
    }
    if (written < kFileBytes) {
      SLED_CHECK(k.Write(writer, wfd, std::span<const char>(block.data(), block.size())).ok(),
                 "stream write failed");
      written += kChunkBytes;
      progress = true;
    }
  }
  for (int i = 0; i < kReaders; ++i) {
    SLED_CHECK(k.Close(*readers[i], fds[i]).ok(), "close failed");
  }
  SLED_CHECK(k.Close(writer, wfd).ok(), "close failed");
  (void)k.FlushAllDirty();

  ModeResult r;
  r.name = name;
  r.seconds = (k.clock().Now() - start).ToSeconds();
  r.repositions = dev->stats().repositions;
  r.device_reads = dev->stats().reads;
  r.device_writes = dev->stats().writes;
  r.pages_paged_in = k.stats().pages_paged_in;
  k.io_scheduler().ForEachQueue([&](uint32_t, const DeviceQueue& q) {
    r.merged += q.stats().merged;
    r.batches += q.stats().dispatched_batches;
    r.max_depth = std::max(r.max_depth, q.stats().max_depth);
  });
  return r;
}

int Main() {
  std::vector<ModeResult> results;
  results.push_back(RunMode(IoMode::kFifoSync, "fifo_sync"));
  results.push_back(RunMode(IoMode::kFifoAsync, "fifo_async"));
  results.push_back(RunMode(IoMode::kElevator, "elevator"));

  std::printf("# I/O scheduler: %d readers + 1 writer, %lld MiB per file, 8 MiB cache\n", kReaders,
              static_cast<long long>(kFileBytes / MiB(1)));
  std::printf("%-11s %10s %12s %8s %8s %8s %8s %9s\n", "mode", "time(s)", "repositions", "reads",
              "writes", "merged", "batches", "max_depth");
  for (const ModeResult& r : results) {
    std::printf("%-11s %10.3f %12lld %8lld %8lld %8lld %8lld %9lld\n", r.name.c_str(), r.seconds,
                static_cast<long long>(r.repositions), static_cast<long long>(r.device_reads),
                static_cast<long long>(r.device_writes), static_cast<long long>(r.merged),
                static_cast<long long>(r.batches), static_cast<long long>(r.max_depth));
  }
  const ModeResult& fifo = results[1];
  const ModeResult& elevator = results[2];
  const double reposition_ratio =
      elevator.repositions > 0
          ? static_cast<double>(fifo.repositions) / static_cast<double>(elevator.repositions)
          : 0.0;
  std::printf("# elevator vs fifo_async: %.2fx fewer repositions, %.2fx time\n", reposition_ratio,
              fifo.seconds > 0 ? elevator.seconds / fifo.seconds : 0.0);

  std::string json = "{\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "  \"%s\": {\"seconds\": %.6f, \"repositions\": %lld, \"device_reads\": %lld, "
                  "\"device_writes\": %lld, \"pages_paged_in\": %lld, \"merged\": %lld, "
                  "\"dispatched_batches\": %lld, \"max_depth\": %lld}%s\n",
                  r.name.c_str(), r.seconds, static_cast<long long>(r.repositions),
                  static_cast<long long>(r.device_reads), static_cast<long long>(r.device_writes),
                  static_cast<long long>(r.pages_paged_in), static_cast<long long>(r.merged),
                  static_cast<long long>(r.batches), static_cast<long long>(r.max_depth), ",");
    json += line;
  }
  char ratio_line[128];
  std::snprintf(ratio_line, sizeof(ratio_line),
                "  \"reposition_ratio_fifo_over_elevator\": %.3f\n", reposition_ratio);
  json += ratio_line;
  json += "}";
  PrintBenchMetrics("iosched", json);
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
