// Ablation: read() vs mmap access for the SLEDs pick loop. The paper notes
// the small-file CPU overhead of its read()-based library and projects that
// "an mmap-friendly SLEDs library is feasible, which should reduce the CPU
// penalty" (§5.2). The simulated kernel has both paths; this bench measures
// wc across them, fully cached (pure CPU regime) and above the cache size
// (I/O-dominated regime, where the copy savings matter less).
#include <cstdio>

#include "src/apps/wc.h"
#include "src/common/units.h"
#include "src/workload/experiment.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

struct Row {
  double read_s = 0.0;
  double mmap_s = 0.0;
};

Row Measure(int64_t size, bool use_sleds, uint64_t seed) {
  Row row;
  for (bool use_mmap : {false, true}) {
    Testbed tb = MakeUnixTestbed(StorageKind::kDisk, seed + (use_mmap ? 1 : 0));
    Process& gen = tb.kernel->CreateProcess("gen");
    Rng rng(seed);
    SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/f.txt", size, rng).ok(), "gen failed");
    tb.kernel->DropCaches();
    Rng run_rng(seed + 7);
    const double mean =
        RunWarmCacheSeries(tb, /*repeats=*/5, run_rng, nullptr,
                           [&](SimKernel& k, Process& p) {
                             WcOptions options;
                             options.use_sleds = use_sleds;
                             options.use_mmap = use_mmap;
                             SLED_CHECK(WcApp::Run(k, p, "/data/f.txt", options).ok(),
                                        "wc failed");
                           })
            .seconds.mean;
    (use_mmap ? row.mmap_s : row.read_s) = mean;
  }
  return row;
}

int Main() {
  std::printf("==== Ablation: read() vs mmap() SLEDs library (wc, ext2, warm) ====\n\n");
  std::printf("%-26s %12s %12s %12s\n", "configuration", "read()", "mmap()", "mmap gain");
  struct Case {
    const char* name;
    int64_t size;
    bool use_sleds;
    uint64_t seed;
  };
  const Case cases[] = {
      {"8 MB cached, plain", MiB(8), false, 600},
      {"8 MB cached, SLEDs", MiB(8), true, 610},
      {"32 MB cached, plain", MiB(32), false, 620},
      {"32 MB cached, SLEDs", MiB(32), true, 630},
      {"96 MB > cache, plain", MiB(96), false, 640},
      {"96 MB > cache, SLEDs", MiB(96), true, 650},
  };
  for (const Case& c : cases) {
    const Row row = Measure(c.size, c.use_sleds, c.seed);
    std::printf("%-26s %10.2f s %10.2f s %+11.1f%%\n", c.name, row.read_s, row.mmap_s,
                100.0 * (row.read_s - row.mmap_s) / row.read_s);
  }
  std::printf(
      "\nIn the cached (CPU-bound) regime the mmap path removes the kernel copy\n"
      "and most of the SLEDs overhead; above the cache size the device time\n"
      "dominates and both access paths converge — confirming the paper's\n"
      "diagnosis that the small-file penalty was \"all CPU time\".\n");
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
