// Reproduces paper Tables 2 and 3: the storage-level characteristics of the
// two experimental machines, as measured by the lmbench-style boot
// calibration (which fills the kernel sleds_table via FSLEDS_FILL).
#include <cstdio>

#include "src/common/units.h"
#include "src/workload/calibrate.h"
#include "src/workload/testbed.h"

namespace sled {
namespace {

void PrintRow(const char* level, Duration latency, double bandwidth_bps) {
  std::printf("  %-12s %14s %10.1f MB/s\n", level, latency.ToString().c_str(),
              bandwidth_bps / 1e6);
}

// Prints the device-model nominals (the Table 2/3 reproduction: these are the
// average-case characteristics an external characterization reports) and then
// the values the in-simulation lmbench-style boot script measures and installs
// via FSLEDS_FILL. Measured seek latencies are shorter than nominals because
// the probe file spans only a fraction of the disk — within-file seeks are
// short-stroke, exactly as on real hardware.
void MeasureMachine(const char* title, Testbed tb) {
  std::printf("\n%s\n", title);
  std::printf("  model nominals (Table reproduction):\n");
  const SledsTable& table = tb.kernel->sleds_table();
  for (int i = 0; i < table.size(); ++i) {
    const SledsTable::Row& row = table.row(i);
    if (row.name == "sys-disk") {
      continue;  // the system disk is not part of the paper's tables
    }
    PrintRow(row.name.c_str(), row.chars.latency, row.chars.bandwidth_bps);
  }
  Process& boot = tb.kernel->CreateProcess("rc.sleds");
  auto rows = CalibrateSledsTable(*tb.kernel, boot);
  SLED_CHECK(rows.ok(), "calibration failed");
  std::printf("  measured by boot calibration (FSLEDS_FILL):\n");
  for (const CalibrationRow& row : rows.value()) {
    if (row.name == "sys-disk") {
      continue;
    }
    PrintRow(row.name.c_str(), row.measured.latency, row.measured.bandwidth_bps);
  }
}

int Main() {
  std::printf("==== Table 2: storage levels, Unix-utility machine ====");
  std::printf("\n(paper: memory 175 ns / 48 MB/s, disk 18 ms / 9.0 MB/s,");
  std::printf("\n        CD-ROM 130 ms / 2.8 MB/s, NFS 270 ms / 1.0 MB/s)\n");
  MeasureMachine("-- measured: disk machine --", MakeUnixTestbed(StorageKind::kDisk, 21));
  MeasureMachine("-- measured: CD-ROM machine --", MakeUnixTestbed(StorageKind::kCdRom, 22));
  MeasureMachine("-- measured: NFS machine --", MakeUnixTestbed(StorageKind::kNfs, 23));

  std::printf("\n==== Table 3: storage levels, LHEASOFT machine ====");
  std::printf("\n(paper: memory 210 ns / 87 MB/s, disk 16.5 ms / 7.0 MB/s)\n");
  MeasureMachine("-- measured --", MakeLheasoftTestbed(24));

  std::printf("\n==== extension: HSM machine (model nominals; not in the paper) ====\n");
  Testbed hsm = MakeHsmTestbed(25);
  const SledsTable& table = hsm.kernel->sleds_table();
  for (int i = 0; i < table.size(); ++i) {
    const SledsTable::Row& row = table.row(i);
    if (row.name == "sys-disk") {
      continue;
    }
    PrintRow(row.name.c_str(), row.chars.latency, row.chars.bandwidth_bps);
  }
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
