// Shared machinery for the figure/table reproduction binaries: environment
// scaling knobs, the standard sweep loop (sizes x {with,without} x warm-cache
// repeats), and paper-style output (rows plus an ASCII rendering of the
// figure).
//
// Environment knobs (full paper parameters by default):
//   SLEDS_BENCH_REPEATS  runs per point after the discarded warm-up (12)
//   SLEDS_BENCH_MAX_MB   truncate the file-size sweep (128)
//   SLEDS_BENCH_STEP_MB  stride of the size sweep (8)
#ifndef SLEDS_BENCH_BENCH_UTIL_H_
#define SLEDS_BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/ascii_plot.h"
#include "src/common/stats.h"
#include "src/workload/experiment.h"
#include "src/workload/testbed.h"

namespace sled {

struct BenchParams {
  int repeats = kPaperRepeats;
  std::vector<int64_t> sizes;

  static BenchParams FromEnv(std::vector<int64_t> default_sizes);
};

// Per-(size, mode) preparation: create the data file(s) on a fresh testbed
// and return an optional per-run setup hook (e.g. moving grep's marker).
using PrepareFn = std::function<std::function<void(SimKernel&, Process&, Rng&)>(
    Testbed& tb, int64_t size, Rng& rng)>;

// One application run; `use_sleds` selects the mode under test.
using AppRunnerFn = std::function<void(SimKernel&, Process&, bool use_sleds)>;

struct SweepResult {
  std::vector<SeriesPoint> time_points;   // x = MB, y = seconds
  std::vector<SeriesPoint> fault_points;  // x = MB, y = page faults
  // Metrics JSON (Observer::MetricsJson) from the last testbed of the sweep:
  // the largest size, SLEDs mode. Deterministic for a fixed sweep.
  std::string metrics_json;
};

// The standard experiment: for each size and each mode, build a fresh
// testbed, prepare the workload, discard one warm-up run, then measure
// `repeats` runs in the same mode.
SweepResult RunFigureSweep(const std::function<Testbed(uint64_t seed)>& make_testbed,
                           const PrepareFn& prepare, const AppRunnerFn& run,
                           const BenchParams& params, uint64_t seed_base = 1000);

// Print one figure: header, machine-readable rows, and an ASCII plot with
// 'w' = with SLEDs, 'o' = without.
void PrintFigure(const std::string& figure_id, const std::string& title,
                 const std::string& y_label, const std::vector<SeriesPoint>& points);

// Print the ratio figure derived from a time sweep (paper Figs 8 and 12).
void PrintRatioFigure(const std::string& figure_id, const std::string& title,
                      const std::vector<SeriesPoint>& points);

// Emit a machine-readable metrics block:
//   ==== BENCH_<bench_id>.json ====
//   { ... }
//   ==== END BENCH_<bench_id>.json ====
// If SLEDS_BENCH_JSON_DIR is set, the JSON is also written to
// $SLEDS_BENCH_JSON_DIR/BENCH_<bench_id>.json.
void PrintBenchMetrics(const std::string& bench_id, const std::string& metrics_json);

}  // namespace sled

#endif  // SLEDS_BENCH_BENCH_UTIL_H_
