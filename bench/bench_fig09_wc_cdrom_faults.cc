// Reproduces paper Figure 9: wc page faults on CD-ROM, with and without
// SLEDs, warm cache, 24-96 MB files.
//
// Expected shape: without SLEDs, faults ~= every page of the file once the
// file exceeds the cache (~24.5k faults at 96 MB); with SLEDs, faults ~= only
// the pages beyond the cache-resident portion, a parallel line offset down by
// the cache size in pages.
#include "bench/bench_util.h"
#include "src/apps/wc.h"
#include "src/common/units.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

std::vector<int64_t> Fig9Sizes() {
  std::vector<int64_t> sizes;
  for (int mb = 24; mb <= 96; mb += 8) {
    sizes.push_back(MiB(mb));
  }
  return sizes;
}

int Main() {
  const BenchParams params = BenchParams::FromEnv(Fig9Sizes());
  const SweepResult sweep = RunFigureSweep(
      [](uint64_t seed) { return MakeUnixTestbed(StorageKind::kCdRom, seed); },
      [](Testbed& tb, int64_t size, Rng& rng) {
        Process& gen = tb.kernel->CreateProcess("master");
        SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/file.txt", size, rng).ok(),
                   "mastering failed");
        tb.FinishMastering();
        return std::function<void(SimKernel&, Process&, Rng&)>();
      },
      [](SimKernel& kernel, Process& p, bool use_sleds) {
        WcOptions options;
        options.use_sleds = use_sleds;
        SLED_CHECK(WcApp::Run(kernel, p, "/data/file.txt", options).ok(), "wc failed");
      },
      params, /*seed_base=*/9000);
  PrintFigure("Figure 9", "Pagefaults for cdrom wc w/wo SLEDs", "Page faults",
              sweep.fault_points);
  PrintBenchMetrics("fig09", sweep.metrics_json);
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
