// Ablation: the cost of record-oriented SLEDs (paper Figure 4 machinery and
// the §5.2 observation that the small-file overhead "is all CPU time, due to
// the additional complexity of record management").
//
// Measures (a) sleds_pick_init cost with and without record adjustment on a
// partially cached file — the record path performs real I/O to find the
// separators at each SLED edge — and (b) end-to-end grep elapsed time on a
// fully cached (small) file, where record management is pure overhead.
#include <cstdio>

#include "src/apps/grep.h"
#include "src/common/units.h"
#include "src/sleds/picker.h"
#include "src/workload/experiment.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

// Cache every other 8-page stripe so the SLED vector has many edges.
void CacheStripes(SimKernel& kernel, Process& p, const std::string& path, int64_t size) {
  const int fd = kernel.Open(p, path).value();
  char b;
  for (int64_t page = 0; page < PagesFor(size); page += 16) {
    for (int64_t q = page; q < std::min(page + 8, PagesFor(size)); ++q) {
      SLED_CHECK(kernel.Lseek(p, fd, q * kPageSize, Whence::kSet).ok(), "lseek failed");
      SLED_CHECK(kernel.Read(p, fd, std::span<char>(&b, 1)).ok(), "read failed");
    }
  }
  SLED_CHECK(kernel.Close(p, fd).ok(), "close failed");
}

int Main() {
  std::printf("==== Ablation: record-oriented SLEDs overhead ====\n\n");

  // (a) Picker construction cost vs number of SLED edges.
  std::printf("picker init cost (16 MB file, alternating cached stripes):\n");
  std::printf("  %-24s %16s\n", "mode", "init cost");
  for (bool record : {false, true}) {
    Testbed tb = MakeUnixTestbed(StorageKind::kDisk, record ? 61 : 62);
    Process& gen = tb.kernel->CreateProcess("gen");
    Rng rng(9);
    SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/f.txt", MiB(16), rng).ok(), "gen failed");
    tb.kernel->DropCaches();
    Process& p = tb.kernel->CreateProcess("app");
    CacheStripes(*tb.kernel, p, "/data/f.txt", MiB(16));
    const int fd = tb.kernel->Open(p, "/data/f.txt").value();
    PickerOptions options;
    options.record_oriented = record;
    const TimePoint t0 = tb.kernel->clock().Now();
    auto picker = SledsPicker::Create(*tb.kernel, p, fd, options);
    SLED_CHECK(picker.ok(), "picker init failed");
    const Duration cost = tb.kernel->clock().Now() - t0;
    std::printf("  %-24s %16s   (%zu SLEDs in plan)\n",
                record ? "record-oriented" : "page-oriented", cost.ToString().c_str(),
                picker.value()->plan().size());
  }

  // (b) End-to-end small-file grep: SLEDs overhead is pure CPU.
  std::printf("\ngrep elapsed on fully cached files (no I/O to save):\n");
  std::printf("  %-10s %14s %14s %12s\n", "size", "plain", "SLEDs", "overhead");
  for (int mb : {1, 2, 4, 8}) {
    Testbed tb = MakeUnixTestbed(StorageKind::kDisk, 70 + mb);
    Process& gen = tb.kernel->CreateProcess("gen");
    Rng rng(mb);
    SLED_CHECK(GenerateTextFile(*tb.kernel, gen, "/data/f.txt", MiB(mb), rng).ok(), "gen failed");
    (void)PlaceMarker(*tb.kernel, gen, "/data/f.txt", MiB(mb) / 2).value();
    auto measure = [&](bool use_sleds) {
      Rng run_rng(99);
      return RunWarmCacheSeries(tb, /*repeats=*/5, run_rng, nullptr,
                                [&](SimKernel& k, Process& p) {
                                  GrepOptions options;
                                  options.use_sleds = use_sleds;
                                  auto r = GrepApp::Run(k, p, "/data/f.txt",
                                                        std::string(kGrepMarker), options);
                                  SLED_CHECK(r.ok(), "grep failed");
                                })
          .seconds.mean;
    };
    const double plain = measure(false);
    const double with = measure(true);
    std::printf("  %-7d MB %12.3f s %12.3f s %+11.1f%%\n", mb, plain, with,
                100.0 * (with - plain) / plain);
  }
  std::printf(
      "\nThe overhead is a few percent of CPU-bound run time — \"a small absolute\n"
      "value\" exactly as §5.2 reports — and buys the I/O savings measured in\n"
      "Figures 7-13 once files stop fitting in cache.\n");
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
