// Extension experiment: SLEDs between file server and client (paper §2/§6:
// "We propose that SLEDs be the vocabulary of communication between clients
// and servers as well as between applications and operating systems").
//
// A RemoteFs client sees three tiers — client memory, server cache, server
// disk. wc over a file 1.5x the *client* cache compares:
//   without SLEDs: linear scan, the LRU pathology refetches everything over
//                  the wire, and whatever misses the server cache hits the
//                  server disk too;
//   with SLEDs:    client-cached first (no wire), then server-cached (wire
//                  only), then server-disk last — less wire traffic AND less
//                  server disk load (the "better citizen" effect, §3.2).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/wc.h"
#include "src/common/units.h"
#include "src/fs/remote_fs.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

struct RemoteWorld {
  std::unique_ptr<SimKernel> kernel;
  RemoteFs* fs = nullptr;
};

RemoteWorld MakeRemoteWorld(uint64_t seed) {
  RemoteWorld w;
  KernelConfig config;
  config.cache.capacity_pages = 10240;  // 40 MiB client cache
  w.kernel = std::make_unique<SimKernel>(config);
  RemoteFsConfig rc;
  rc.server_cache_pages = 4096;  // 16 MiB server cache
  rc.seed = seed;
  auto fs = std::make_unique<RemoteFs>("nfs2", rc);
  w.fs = fs.get();
  SLED_CHECK(w.kernel->Mount("/", std::move(fs)).ok(), "mount failed");
  return w;
}

int Main() {
  std::printf("==== Extension: SLEDs across the wire (client/server-cache/server-disk) ====\n\n");
  const int64_t size = MiB(60);
  std::printf("%-16s %12s %12s %14s %16s\n", "mode", "elapsed", "faults", "wire bytes",
              "server disk reads");
  for (bool use_sleds : {false, true}) {
    RemoteWorld w = MakeRemoteWorld(use_sleds ? 51 : 52);
    Process& gen = w.kernel->CreateProcess("gen");
    Rng rng(53);
    SLED_CHECK(GenerateTextFile(*w.kernel, gen, "/file.txt", size, rng).ok(), "gen failed");
    (void)w.kernel->FlushAllDirty();
    w.kernel->cache().Clear();  // cold client, server keeps its own cache

    // Warm-up run (discarded), then one measured run — enough to show the
    // steady-state tier usage.
    for (int round = 0; round < 2; ++round) {
      Process& p = w.kernel->CreateProcess(use_sleds ? "wc-sleds" : "wc");
      const int64_t disk_reads_before = w.fs->server().disk().stats().bytes_read;
      WcOptions options;
      options.use_sleds = use_sleds;
      SLED_CHECK(WcApp::Run(*w.kernel, p, "/file.txt", options).ok(), "wc failed");
      if (round == 1) {
        std::printf("%-16s %10.2f s %12lld %11lld MB %13lld MB\n",
                    use_sleds ? "with SLEDs" : "without SLEDs",
                    p.stats().elapsed().ToSeconds(),
                    static_cast<long long>(p.stats().major_faults),
                    static_cast<long long>(p.stats().major_faults * kPageSize / kMiB),
                    static_cast<long long>(
                        (w.fs->server().disk().stats().bytes_read - disk_reads_before) / kMiB));
      }
    }
  }
  std::printf(
      "\nWith SLEDs the client drains its own cache first and prefers the\n"
      "server-cached pages for what remains: fewer wire bytes and a fraction\n"
      "of the server disk traffic.\n");
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
