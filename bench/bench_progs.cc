// Completion-program benchmark: how much of an application's cost was just
// kernel crossings? Two scenarios, both deterministic simulated time:
//
// 1. Grep early-exit — `grep -q` over a cold ext2 text file with one marker
//    placed past the midpoint. The oracle pays a read() per buffer until the
//    match; the completion program scans at I/O completion, returns after
//    the matching chunk, and cancels the readahead it no longer needs. The
//    gated `speedup` is the crossing reduction (oracle syscalls / program
//    syscalls) — the paper-style "hops eliminated" number, required >= 2x.
//
// 2. Chain walk — a 2048-block pointer chase, cache fully warm so device
//    time is out of the picture and *only* the per-hop overhead differs:
//    two syscalls plus a user copy per hop for the oracle versus one
//    install + one run for the program. Results are asserted identical
//    (same blocks, same order, same matches) before any timing is reported.
//    The gated `speedup` is simulated elapsed time, oracle / program.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/apps/find.h"
#include "src/apps/grep.h"
#include "src/common/rng.h"
#include "src/device/disk_device.h"
#include "src/fs/extent_file_system.h"
#include "src/workload/chain_gen.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

struct World {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
};

World MakeWorld() {
  World w;
  KernelConfig config;
  config.cache.capacity_pages = 10240;
  w.kernel = std::make_unique<SimKernel>(config);
  DiskDeviceConfig dc;
  dc.seed = 7;
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(dc));
  SLED_CHECK(w.kernel->Mount("/", std::move(fs)).ok(), "mount failed");
  w.proc = &w.kernel->CreateProcess("progbench");
  return w;
}

struct RunCost {
  double ms = 0;
  int64_t syscalls = 0;
};

// ---- scenario 1: grep -q early exit, cold cache ----

struct GrepOutcome {
  RunCost off;
  RunCost on;
  bool agree = false;
};

GrepOutcome RunGrepEarlyExit() {
  constexpr int64_t kFileBytes = 16 * kMiB;
  GrepOutcome out;
  bool found[2] = {false, false};
  for (int use_prog = 0; use_prog < 2; ++use_prog) {
    World w = MakeWorld();
    Rng rng(1234);
    SLED_CHECK(GenerateTextFile(*w.kernel, *w.proc, "/t.txt", kFileBytes, rng).ok(),
               "genfile failed");
    SLED_CHECK(PlaceMarker(*w.kernel, *w.proc, "/t.txt", (kFileBytes * 5) / 8).ok(),
               "marker failed");
    w.kernel->FlushAllDirty();
    w.kernel->DropCaches();
    Process& runner = w.kernel->CreateProcess("grep");
    GrepOptions opts;
    opts.quiet_first_match = true;
    opts.kernel_program = use_prog == 1;
    auto r = GrepApp::Run(*w.kernel, runner, "/t.txt", kGrepMarker, opts);
    SLED_CHECK(r.ok(), "grep failed");
    found[use_prog] = r->found;
    RunCost& cost = use_prog == 1 ? out.on : out.off;
    cost.ms = runner.stats().elapsed().ToSeconds() * 1e3;
    cost.syscalls = runner.stats().syscalls;
  }
  out.agree = found[0] && found[1];
  return out;
}

// ---- scenario 2: chain walk, warm cache ----

struct ChainOutcome {
  RunCost off;
  RunCost on;
  bool agree = false;
  int64_t blocks = 0;
};

ChainOutcome RunChainWalk() {
  constexpr int64_t kBlocks = 2048;
  World w = MakeWorld();
  Rng rng(77);
  ChainGenOptions gen;
  gen.num_blocks = kBlocks;
  gen.marker_every = 64;
  SLED_CHECK(GenerateChainFile(*w.kernel, *w.proc, "/chain", gen, rng).ok(), "genchain failed");
  w.kernel->FlushAllDirty();

  ChainOptions opts;
  opts.name_contains = std::string(kChainMarker);
  // Warm-up pass: after this every block is cached, so the measured runs
  // differ only in per-hop crossing and copy cost.
  SLED_CHECK(FindApp::RunChain(*w.kernel, *w.proc, "/chain", opts).ok(), "warm-up failed");

  ChainOutcome out;
  ChainResult results[2];
  for (int use_prog = 0; use_prog < 2; ++use_prog) {
    Process& runner = w.kernel->CreateProcess("chain");
    ChainOptions run_opts = opts;
    run_opts.kernel_program = use_prog == 1;
    auto r = FindApp::RunChain(*w.kernel, runner, "/chain", run_opts);
    SLED_CHECK(r.ok(), "chain walk failed");
    results[use_prog] = r.value();
    RunCost& cost = use_prog == 1 ? out.on : out.off;
    cost.ms = runner.stats().elapsed().ToSeconds() * 1e3;
    cost.syscalls = runner.stats().syscalls;
  }
  // Identity first, timing second: a fast wrong answer is not a speedup.
  out.agree = results[0] == results[1];
  out.blocks = results[0].blocks_visited;
  return out;
}

int Main() {
  const GrepOutcome grep = RunGrepEarlyExit();
  const double grep_hops =
      grep.on.syscalls > 0 ? static_cast<double>(grep.off.syscalls) /
                                 static_cast<double>(grep.on.syscalls)
                           : 0.0;
  const double grep_time = grep.on.ms > 0 ? grep.off.ms / grep.on.ms : 0.0;
  std::printf("# grep -q early exit: 16 MiB cold ext2, marker at 5/8\n");
  std::printf("  oracle:  %6lld syscalls  %8.3f ms\n",
              static_cast<long long>(grep.off.syscalls), grep.off.ms);
  std::printf("  program: %6lld syscalls  %8.3f ms   crossings %.1fx down, time %.2fx, "
              "agree=%s\n",
              static_cast<long long>(grep.on.syscalls), grep.on.ms, grep_hops, grep_time,
              grep.agree ? "yes" : "NO");

  const ChainOutcome chain = RunChainWalk();
  const double chain_speedup = chain.on.ms > 0 ? chain.off.ms / chain.on.ms : 0.0;
  std::printf("# chain walk: %lld warm blocks, 2 syscalls/hop vs 1 program run\n",
              static_cast<long long>(chain.blocks));
  std::printf("  oracle:  %6lld syscalls  %8.3f ms\n",
              static_cast<long long>(chain.off.syscalls), chain.off.ms);
  std::printf("  program: %6lld syscalls  %8.3f ms   time %.2fx, agree=%s\n",
              static_cast<long long>(chain.on.syscalls), chain.on.ms, chain_speedup,
              chain.agree ? "yes" : "NO");

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"grep_hops\": {\"speedup\": %.6f, \"syscalls_off\": %lld, \"syscalls_on\": %lld, "
      "\"time_off_ms\": %.6f, \"time_on_ms\": %.6f, \"time_ratio\": %.6f},\n"
      "  \"chain_walk\": {\"speedup\": %.6f, \"syscalls_off\": %lld, \"syscalls_on\": %lld, "
      "\"time_off_ms\": %.6f, \"time_on_ms\": %.6f, \"blocks\": %lld}\n"
      "}",
      grep_hops, static_cast<long long>(grep.off.syscalls),
      static_cast<long long>(grep.on.syscalls), grep.off.ms, grep.on.ms, grep_time,
      chain_speedup, static_cast<long long>(chain.off.syscalls),
      static_cast<long long>(chain.on.syscalls), chain.off.ms, chain.on.ms,
      static_cast<long long>(chain.blocks));
  PrintBenchMetrics("progs", json);

  const bool pass = grep.agree && chain.agree && grep_hops >= 2.0 && chain_speedup > 1.0;
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
