// Microbenchmarks (google-benchmark) for the SLEDs hot paths: cache ops,
// kernel SLED scans, picker stepping, the Horspool search, and FITS pixel
// codecs. These bound the CPU overhead the SLEDs machinery adds per I/O.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/apps/grep.h"
#include "src/cache/page_cache.h"
#include "src/common/rng.h"
#include "src/device/disk_device.h"
#include "src/fits/fits.h"
#include "src/fs/extent_file_system.h"
#include "src/kernel/sim_kernel.h"
#include "src/sleds/picker.h"

namespace sled {
namespace {

void BM_PageCacheTouchHit(benchmark::State& state) {
  PageCache cache({.capacity_pages = 4096});
  for (int64_t p = 0; p < 4096; ++p) {
    cache.Insert({1, p}, false);
  }
  int64_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Touch({1, p}));
    p = (p + 1) & 4095;
  }
}
BENCHMARK(BM_PageCacheTouchHit);

void BM_PageCacheInsertEvict(benchmark::State& state) {
  PageCache cache({.capacity_pages = 1024});
  int64_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Insert({1, p++}, false));
  }
}
BENCHMARK(BM_PageCacheInsertEvict);

struct KernelFixture {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
  int fd = -1;

  explicit KernelFixture(int64_t file_pages) {
    KernelConfig config;
    config.cache.capacity_pages = file_pages;
    kernel = std::make_unique<SimKernel>(config);
    auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
    (void)kernel->Mount("/", std::move(fs));
    proc = &kernel->CreateProcess("bench");
    const int cfd = kernel->Create(*proc, "/f").value();
    const std::string data(static_cast<size_t>(file_pages * kPageSize), 'x');
    (void)kernel->Write(*proc, cfd, std::span<const char>(data.data(), data.size()));
    (void)kernel->Close(*proc, cfd);
    // Cache alternating stripes so scans see many SLED transitions.
    kernel->DropCaches();
    fd = kernel->Open(*proc, "/f").value();
    char b;
    for (int64_t page = 0; page < file_pages; page += 16) {
      for (int64_t q = page; q < std::min(page + 8, file_pages); ++q) {
        (void)kernel->Lseek(*proc, fd, q * kPageSize, Whence::kSet);
        (void)kernel->Read(*proc, fd, std::span<char>(&b, 1));
      }
    }
  }
};

void BM_SledsGetScan(benchmark::State& state) {
  KernelFixture fx(state.range(0));
  for (auto _ : state) {
    auto sleds = fx.kernel->IoctlSledsGet(*fx.proc, fx.fd);
    benchmark::DoNotOptimize(sleds);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SledsGetScan)->Arg(1024)->Arg(8192)->Arg(32768);

void BM_PickerFullWalk(benchmark::State& state) {
  KernelFixture fx(state.range(0));
  for (auto _ : state) {
    auto picker = SledsPicker::Create(*fx.kernel, *fx.proc, fx.fd, PickerOptions{}).value();
    int64_t total = 0;
    while (true) {
      auto pick = picker->NextRead().value();
      if (pick.length == 0) {
        break;
      }
      total += pick.length;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PickerFullWalk)->Arg(1024)->Arg(8192);

void BM_HorspoolSearch(benchmark::State& state) {
  Rng rng(1);
  std::string haystack;
  haystack.reserve(1 << 20);
  for (int i = 0; i < (1 << 20); ++i) {
    haystack.push_back(static_cast<char>('a' + rng.Uniform(0, 25)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(HorspoolSearchAll(haystack, "XNEEDLEX"));
  }
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_HorspoolSearch);

void BM_FitsPixelCodec(benchmark::State& state) {
  const int bitpix = static_cast<int>(state.range(0));
  char buf[8];
  double v = 1.5;
  for (auto _ : state) {
    FitsEncodePixel(v, bitpix, buf);
    v = FitsDecodePixel(buf, bitpix) + 1.0;
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_FitsPixelCodec)->Arg(16)->Arg(-32)->Arg(-64);

void BM_KernelCachedRead(benchmark::State& state) {
  KernelFixture fx(256);
  // Warm everything.
  char buf[65536];
  (void)fx.kernel->Lseek(*fx.proc, fx.fd, 0, Whence::kSet);
  while (fx.kernel->Read(*fx.proc, fx.fd, std::span<char>(buf, sizeof(buf))).value() > 0) {
  }
  for (auto _ : state) {
    (void)fx.kernel->Lseek(*fx.proc, fx.fd, 0, Whence::kSet);
    benchmark::DoNotOptimize(
        fx.kernel->Read(*fx.proc, fx.fd, std::span<char>(buf, sizeof(buf))));
  }
  state.SetBytesProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_KernelCachedRead);

}  // namespace
}  // namespace sled

BENCHMARK_MAIN();
