// Microbenchmarks for the SLEDs hot paths: cache ops, kernel SLED scans,
// picker stepping, the Horspool search, and FITS pixel codecs. These bound
// the CPU overhead the SLEDs machinery adds per I/O.
//
// Two layers:
//  * A wall-clock suite (std::chrono, real time — NOT the simulated clock)
//    that pits the run-indexed page cache against naive page-at-a-time
//    replicas of the old algorithms and emits a BENCH_micro.json block.
//  * The google-benchmark registrations, run afterwards.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/grep.h"
#include "src/cache/page_cache.h"
#include "src/common/log.h"
#include "src/common/rng.h"
#include "src/device/disk_device.h"
#include "src/fits/fits.h"
#include "src/fs/extent_file_system.h"
#include "src/kernel/sim_kernel.h"
#include "src/sleds/picker.h"

namespace sled {
namespace {

void BM_PageCacheTouchHit(benchmark::State& state) {
  PageCache cache({.capacity_pages = 4096});
  for (int64_t p = 0; p < 4096; ++p) {
    cache.Insert({1, p}, false);
  }
  int64_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Touch({1, p}));
    p = (p + 1) & 4095;
  }
}
BENCHMARK(BM_PageCacheTouchHit);

void BM_PageCacheInsertEvict(benchmark::State& state) {
  PageCache cache({.capacity_pages = 1024});
  int64_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Insert({1, p++}, false));
  }
}
BENCHMARK(BM_PageCacheInsertEvict);

struct KernelFixture {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
  int fd = -1;

  explicit KernelFixture(int64_t file_pages, int64_t stripe_period = 16,
                         int64_t stripe_len = 8) {
    KernelConfig config;
    config.cache.capacity_pages = file_pages;
    kernel = std::make_unique<SimKernel>(config);
    auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
    (void)kernel->Mount("/", std::move(fs));
    proc = &kernel->CreateProcess("bench");
    const int cfd = kernel->Create(*proc, "/f").value();
    const std::string data(static_cast<size_t>(file_pages * kPageSize), 'x');
    (void)kernel->Write(*proc, cfd, std::span<const char>(data.data(), data.size()));
    (void)kernel->Close(*proc, cfd);
    // Cache alternating stripes so scans see many SLED transitions.
    kernel->DropCaches();
    fd = kernel->Open(*proc, "/f").value();
    char b;
    for (int64_t page = 0; page < file_pages; page += stripe_period) {
      for (int64_t q = page; q < std::min(page + stripe_len, file_pages); ++q) {
        (void)kernel->Lseek(*proc, fd, q * kPageSize, Whence::kSet);
        (void)kernel->Read(*proc, fd, std::span<char>(&b, 1));
      }
    }
  }
};

void BM_SledsGetScan(benchmark::State& state) {
  KernelFixture fx(state.range(0));
  for (auto _ : state) {
    auto sleds = fx.kernel->IoctlSledsGet(*fx.proc, fx.fd);
    benchmark::DoNotOptimize(sleds);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SledsGetScan)->Arg(1024)->Arg(8192)->Arg(32768);

void BM_PickerFullWalk(benchmark::State& state) {
  KernelFixture fx(state.range(0));
  for (auto _ : state) {
    auto picker = SledsPicker::Create(*fx.kernel, *fx.proc, fx.fd, PickerOptions{}).value();
    int64_t total = 0;
    while (true) {
      auto pick = picker->NextRead().value();
      if (pick.length == 0) {
        break;
      }
      total += pick.length;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PickerFullWalk)->Arg(1024)->Arg(8192);

void BM_HorspoolSearch(benchmark::State& state) {
  Rng rng(1);
  std::string haystack;
  haystack.reserve(1 << 20);
  for (int i = 0; i < (1 << 20); ++i) {
    haystack.push_back(static_cast<char>('a' + rng.Uniform(0, 25)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(HorspoolSearchAll(haystack, "XNEEDLEX"));
  }
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_HorspoolSearch);

void BM_FitsPixelCodec(benchmark::State& state) {
  const int bitpix = static_cast<int>(state.range(0));
  char buf[8];
  double v = 1.5;
  for (auto _ : state) {
    FitsEncodePixel(v, bitpix, buf);
    v = FitsDecodePixel(buf, bitpix) + 1.0;
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_FitsPixelCodec)->Arg(16)->Arg(-32)->Arg(-64);

void BM_KernelCachedRead(benchmark::State& state) {
  KernelFixture fx(256);
  // Warm everything.
  char buf[65536];
  (void)fx.kernel->Lseek(*fx.proc, fx.fd, 0, Whence::kSet);
  while (fx.kernel->Read(*fx.proc, fx.fd, std::span<char>(buf, sizeof(buf))).value() > 0) {
  }
  for (auto _ : state) {
    (void)fx.kernel->Lseek(*fx.proc, fx.fd, 0, Whence::kSet);
    benchmark::DoNotOptimize(
        fx.kernel->Read(*fx.proc, fx.fd, std::span<char>(buf, sizeof(buf))));
  }
  state.SetBytesProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_KernelCachedRead);

// ---------------------------------------------------------------------------
// Wall-clock suite. Everything below measures *host* time with
// std::chrono::steady_clock — the simulated clock plays no part — comparing
// the run-indexed cache paths against faithful replicas of the old
// page-at-a-time algorithms built from the same public API.

// Best-of-N wall time in microseconds (min is robust against scheduler noise).
template <typename F>
double BestWallMicros(int iters, F&& f) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  return best;
}

// Replica of the pre-index FSLEDS_GET: probe the cache for every page of the
// file and merge adjacent equal-level pages.
SledVector NaiveSledsGet(SimKernel& k, uint32_t fs_id, InodeNum ino, FileId fid) {
  FileSystem* fs = k.vfs().FsById(fs_id);
  const int64_t size = fs->SizeOf(ino);
  const int64_t npages = PagesFor(size);
  SledVector sleds;
  for (int64_t page = 0; page < npages; ++page) {
    int level = kMemoryLevel;
    if (!k.cache().Contains({fid, page})) {
      level = k.sleds_table().GlobalLevelOf(fs_id, fs->LevelOf(ino, page)).value();
    }
    const int64_t page_bytes = std::min(kPageSize, size - page * kPageSize);
    if (!sleds.empty() && sleds.back().level == level) {
      sleds.back().length += page_bytes;
      continue;
    }
    const SledsTable::Row& row = k.sleds_table().row(level);
    Sled s;
    s.offset = page * kPageSize;
    s.length = page_bytes;
    s.latency = row.chars.latency.ToSeconds();
    s.bandwidth = row.chars.bandwidth_bps;
    s.level = level;
    sleds.push_back(s);
  }
  return sleds;
}

// Replica of the pre-index readahead planner: extend the run one Contains
// probe at a time.
int64_t NaivePlanRun(const PageCache& cache, FileId fid, int64_t page, int64_t window,
                     int64_t file_pages) {
  int64_t run = 1;
  while (run < window && page + run < file_pages && !cache.Contains({fid, page + run})) {
    ++run;
  }
  return run;
}

int64_t IndexedPlanRun(const PageCache& cache, FileId fid, int64_t page, int64_t window,
                       int64_t file_pages) {
  int64_t run = std::min(window, file_pages - page);
  if (const auto next = cache.NextResidentRun(fid, page + 1); next.has_value()) {
    run = std::min(run, next->first - page);
  }
  return std::max<int64_t>(run, 1);
}

struct MicroResult {
  double naive_us = 0;
  double indexed_us = 0;
  double speedup() const { return indexed_us > 0 ? naive_us / indexed_us : 0; }
};

// Sparse-file FSLEDS_GET: 32768 pages (128 MiB), half resident in 128-page
// stripes — a sparsely cached file whose scan is ~256 runs vs 32768 pages.
MicroResult MeasureSledsGet() {
  constexpr int64_t kPages = 32768;
  KernelFixture fx(kPages, /*stripe_period=*/256, /*stripe_len=*/128);
  const OpenFile* of = fx.proc->FindFd(fx.fd);
  const uint32_t fs_id = of->fs_id;
  const InodeNum ino = of->ino;
  const FileId fid = of->fid;
  // Sanity: the two scans must agree before timing them.
  const SledVector naive = NaiveSledsGet(*fx.kernel, fs_id, ino, fid);
  const SledVector indexed = fx.kernel->IoctlSledsGet(*fx.proc, fx.fd).value();
  SLED_CHECK(naive.size() == indexed.size(), "sled count mismatch: %zu vs %zu", naive.size(),
             indexed.size());
  for (size_t i = 0; i < naive.size(); ++i) {
    SLED_CHECK(naive[i].offset == indexed[i].offset && naive[i].length == indexed[i].length &&
                   naive[i].level == indexed[i].level,
               "sled %zu mismatch", i);
  }
  MicroResult r;
  r.naive_us = BestWallMicros(15, [&] {
    benchmark::DoNotOptimize(NaiveSledsGet(*fx.kernel, fs_id, ino, fid));
  });
  r.indexed_us = BestWallMicros(15, [&] {
    benchmark::DoNotOptimize(fx.kernel->IoctlSledsGet(*fx.proc, fx.fd).value());
  });
  return r;
}

// Readahead planning across every miss page of a striped cache.
MicroResult MeasurePlanRun() {
  constexpr int64_t kPages = 1 << 17;
  constexpr int64_t kWindow = 32;
  constexpr FileId kFid = 7;
  PageCache cache({.capacity_pages = kPages});
  for (int64_t page = 0; page < kPages; page += 16) {
    for (int64_t q = page; q < page + 8; ++q) {
      cache.Insert({kFid, q}, false);
    }
  }
  auto sweep = [&](auto&& plan) {
    int64_t total = 0;
    for (int64_t page = 8; page < kPages; page += 16) {
      total += plan(cache, kFid, page, kWindow, kPages);  // pages 8..15 missed
    }
    return total;
  };
  SLED_CHECK(sweep(NaivePlanRun) == sweep(IndexedPlanRun), "plan-run sweep mismatch");
  MicroResult r;
  r.naive_us = BestWallMicros(15, [&] { benchmark::DoNotOptimize(sweep(NaivePlanRun)); });
  r.indexed_us = BestWallMicros(15, [&] { benchmark::DoNotOptimize(sweep(IndexedPlanRun)); });
  return r;
}

// Writeback flush lookup: AllDirtyPages over 100k resident pages with a
// sparse dirty set, vs the old full-cache scan (replicated on a mirror map).
MicroResult MeasureAllDirty() {
  constexpr int64_t kFiles = 10;
  constexpr int64_t kPagesPerFile = 10000;
  PageCache cache({.capacity_pages = kFiles * kPagesPerFile});
  std::unordered_map<PageKey, bool, PageKeyHash> mirror;
  for (int64_t f = 1; f <= kFiles; ++f) {
    for (int64_t page = 0; page < kPagesPerFile; ++page) {
      const bool dirty = page % 64 == 0;
      cache.Insert({static_cast<FileId>(f), page}, dirty);
      mirror[{static_cast<FileId>(f), page}] = dirty;
    }
  }
  auto naive_all_dirty = [&] {
    std::vector<PageKey> out;
    for (const auto& [key, dirty] : mirror) {
      if (dirty) {
        out.push_back(key);
      }
    }
    std::sort(out.begin(), out.end(), [](const PageKey& a, const PageKey& b) {
      return a.file != b.file ? a.file < b.file : a.page < b.page;
    });
    return out;
  };
  SLED_CHECK(naive_all_dirty() == cache.AllDirtyPages(), "dirty-set mismatch");
  MicroResult r;
  r.naive_us = BestWallMicros(15, [&] { benchmark::DoNotOptimize(naive_all_dirty()); });
  r.indexed_us = BestWallMicros(15, [&] { benchmark::DoNotOptimize(cache.AllDirtyPages()); });
  return r;
}

void RunWallClockSuite() {
  const MicroResult sleds = MeasureSledsGet();
  const MicroResult plan = MeasurePlanRun();
  const MicroResult dirty = MeasureAllDirty();
  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"sleds_get_sparse_32768p\": "
      "{\"naive_us\": %.1f, \"indexed_us\": %.1f, \"speedup\": %.2f},\n"
      "  \"readahead_plan_sweep\": "
      "{\"naive_us\": %.1f, \"indexed_us\": %.1f, \"speedup\": %.2f},\n"
      "  \"all_dirty_pages_100k\": "
      "{\"naive_us\": %.1f, \"indexed_us\": %.1f, \"speedup\": %.2f}\n"
      "}",
      sleds.naive_us, sleds.indexed_us, sleds.speedup(), plan.naive_us, plan.indexed_us,
      plan.speedup(), dirty.naive_us, dirty.indexed_us, dirty.speedup());
  PrintBenchMetrics("micro", json);
}

}  // namespace
}  // namespace sled

int main(int argc, char** argv) {
  sled::RunWallClockSuite();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
