// Ablation: SLED locks (paper §3.4: "Adding a lock or reservation mechanism
// would improve the accuracy and lifetime of SLEDs by controlling access to
// the affected resources").
//
// Scenario: a SLEDs application plans its reads (sleds_pick_init), but
// before it finishes consuming the plan another process streams a large
// file, evicting the cached region the plan counted on. Without a lock the
// "memory" picks silently become disk reads (the estimate was stale, §3.4);
// with FSLEDS_LOCK on the planned region the estimate stays true.
#include <cstdio>

#include "src/common/units.h"
#include "src/sleds/picker.h"
#include "src/workload/experiment.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

struct Outcome {
  double seconds = 0.0;
  int64_t faults = 0;
  double estimate_sec = 0.0;  // the picker-time estimate of remaining work
};

Outcome RunReader(bool use_lock, uint64_t seed) {
  Testbed tb = MakeUnixTestbed(StorageKind::kDisk, seed);
  SimKernel& kernel = *tb.kernel;
  Process& gen = kernel.CreateProcess("gen");
  Rng rng(seed);
  SLED_CHECK(GenerateTextFile(kernel, gen, "/data/hot.txt", MiB(16), rng).ok(), "gen failed");
  SLED_CHECK(GenerateTextFile(kernel, gen, "/data/flood.txt", MiB(64), rng).ok(), "gen failed");
  kernel.DropCaches();

  // Warm the hot file: it is fully cached when the reader plans.
  Process& warm = kernel.CreateProcess("warm");
  {
    const int fd = kernel.Open(warm, "/data/hot.txt").value();
    std::vector<char> buf(static_cast<size_t>(256 * kKiB));
    while (kernel.Read(warm, fd, std::span<char>(buf.data(), buf.size())).value() > 0) {
    }
    SLED_CHECK(kernel.Close(warm, fd).ok(), "close failed");
  }

  Process& reader = kernel.CreateProcess("reader");
  const int fd = kernel.Open(reader, "/data/hot.txt").value();
  auto picker = SledsPicker::Create(kernel, reader, fd, PickerOptions{}).value();
  Outcome out;
  // The plan says: everything from memory.
  for (const Sled& s : picker->plan()) {
    out.estimate_sec += s.DeliveryTime().ToSeconds();
  }
  if (use_lock) {
    SLED_CHECK(kernel.IoctlSledsLock(reader, fd, 0, MiB(16)).value() > 0, "lock failed");
  }

  // Before the reader gets to consume its plan, a flood evicts the cache.
  Process& flood = kernel.CreateProcess("flood");
  {
    const int ffd = kernel.Open(flood, "/data/flood.txt").value();
    std::vector<char> buf(static_cast<size_t>(256 * kKiB));
    while (kernel.Read(flood, ffd, std::span<char>(buf.data(), buf.size())).value() > 0) {
    }
    SLED_CHECK(kernel.Close(flood, ffd).ok(), "close failed");
  }

  // Now the reader consumes the (possibly stale) plan.
  std::vector<char> buf(static_cast<size_t>(64 * kKiB));
  while (true) {
    auto pick = picker->NextRead().value();
    if (pick.length == 0) {
      break;
    }
    SLED_CHECK(kernel.Lseek(reader, fd, pick.offset, Whence::kSet).ok(), "lseek failed");
    SLED_CHECK(
        kernel.Read(reader, fd, std::span<char>(buf.data(), static_cast<size_t>(pick.length)))
            .ok(),
        "read failed");
  }
  SLED_CHECK(kernel.Close(reader, fd).ok(), "close failed");
  out.seconds = reader.stats().elapsed().ToSeconds();
  out.faults = reader.stats().major_faults;
  return out;
}

int Main() {
  std::printf(
      "==== Ablation: SLED locks (plan, get flooded, then consume; 16 MB hot file,\n"
      "     40 MB cache, 64 MB competing stream) ====\n\n");
  std::printf("%-22s %12s %14s %18s\n", "mode", "elapsed", "major faults", "planned estimate");
  for (bool use_lock : {false, true}) {
    const Outcome o = RunReader(use_lock, use_lock ? 71 : 72);
    std::printf("%-22s %10.2f s %14lld %15.2f s\n",
                use_lock ? "FSLEDS_LOCK held" : "no lock (paper impl)", o.seconds,
                static_cast<long long>(o.faults), o.estimate_sec);
  }
  std::printf(
      "\nWithout the lock the flood invalidates the plan: every \"memory\" pick\n"
      "turns into a disk read and the estimate is off by an order of magnitude.\n"
      "With the lock the pages stay resident and the estimate stays honest —\n"
      "at the cost of denying the flood ~40%% of the cache.\n");
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
