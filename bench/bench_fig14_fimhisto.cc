// Reproduces paper Figure 14: fimhisto elapsed time on ext2 (the Table 3
// machine), with and without SLEDs, warm cache, 8-64 MB FITS images.
//
// Expected shape: the familiar divergence above the cache size, but with
// smaller relative gains than wc/grep (the paper reports 15-25% elapsed-time
// reduction at 48-64 MB): a quarter of the I/O is writes, which SLEDs does
// not help, and conversion CPU dilutes the I/O savings.
#include "bench/bench_util.h"
#include "src/apps/fimhisto.h"
#include "src/workload/fits_gen.h"

namespace sled {
namespace {

int Main() {
  const BenchParams params = BenchParams::FromEnv(PaperLheasoftSizes());
  const SweepResult sweep = RunFigureSweep(
      [](uint64_t seed) { return MakeLheasoftTestbed(seed); },
      [](Testbed& tb, int64_t size, Rng& rng) {
        Process& gen = tb.kernel->CreateProcess("gen");
        SLED_CHECK(
            GenerateFitsImage(*tb.kernel, gen, "/data/image.fits", size, -32, rng).ok(),
            "image generation failed");
        tb.kernel->DropCaches();
        return std::function<void(SimKernel&, Process&, Rng&)>();
      },
      [](SimKernel& kernel, Process& p, bool use_sleds) {
        FimhistoOptions options;
        options.use_sleds = use_sleds;
        SLED_CHECK(
            FimhistoApp::Run(kernel, p, "/data/image.fits", "/data/out.fits", options).ok(),
            "fimhisto failed");
      },
      params, /*seed_base=*/14000);
  PrintFigure("Figure 14", "Elapsed time for FIMHISTO with/without SLEDs", "Execution time (s)",
              sweep.time_points);
  PrintFigure("Figure 14b (companion)", "Page faults for FIMHISTO with/without SLEDs",
              "Page faults", sweep.fault_points);
  return 0;
}

}  // namespace
}  // namespace sled

int main() { return sled::Main(); }
