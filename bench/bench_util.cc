#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "src/common/units.h"
#include "src/shard/shard_runtime.h"

namespace sled {

BenchParams BenchParams::FromEnv(std::vector<int64_t> default_sizes) {
  BenchParams params;
  if (const char* env = std::getenv("SLEDS_BENCH_REPEATS")) {
    params.repeats = std::max(2, atoi(env));
  }
  int64_t max_mb = 1 << 20;
  if (const char* env = std::getenv("SLEDS_BENCH_MAX_MB")) {
    max_mb = std::max(1, atoi(env));
  }
  int64_t step_mb = 0;
  if (const char* env = std::getenv("SLEDS_BENCH_STEP_MB")) {
    step_mb = std::max(1, atoi(env));
  }
  int64_t last_mb = -1;
  for (int64_t size : default_sizes) {
    const int64_t mb = size / kMiB;
    if (mb > max_mb) {
      continue;
    }
    if (step_mb > 0 && last_mb >= 0 && mb - last_mb < step_mb) {
      continue;
    }
    params.sizes.push_back(size);
    last_mb = mb;
  }
  if (params.sizes.empty()) {
    params.sizes.push_back(default_sizes.front());
  }
  return params;
}

SweepResult RunFigureSweep(const std::function<Testbed(uint64_t seed)>& make_testbed,
                           const PrepareFn& prepare, const AppRunnerFn& run,
                           const BenchParams& params, uint64_t seed_base) {
  SweepResult result;
  uint64_t seed = seed_base;
  for (int64_t size : params.sizes) {
    SeriesPoint time_point;
    SeriesPoint fault_point;
    time_point.x = static_cast<double>(size) / static_cast<double>(kMiB);
    fault_point.x = time_point.x;
    for (bool use_sleds : {false, true}) {
      ++seed;
      Testbed tb = make_testbed(seed);
      Rng rng(seed * 7919);
      auto per_run_setup = prepare(tb, size, rng);
      const MeasuredPoint point = RunWarmCacheSeries(
          tb, params.repeats, rng, per_run_setup,
          [&](SimKernel& k, Process& p) { run(k, p, use_sleds); });
      if (use_sleds) {
        time_point.with_sleds = point.seconds;
        fault_point.with_sleds = point.faults;
      } else {
        time_point.without_sleds = point.seconds;
        fault_point.without_sleds = point.faults;
      }
      result.metrics_json = tb.kernel->obs().MetricsJson();
    }
    result.time_points.push_back(time_point);
    result.fault_points.push_back(fault_point);
    std::fprintf(stderr, "  [%4.0f MB done]\n", time_point.x);
  }
  return result;
}

namespace {

void PrintPlot(const std::string& title, const std::string& y_label,
               const std::vector<SeriesPoint>& points) {
  PlotSeries with{"with SLEDs", 'w', {}, {}};
  PlotSeries without{"without SLEDs", 'o', {}, {}};
  for (const SeriesPoint& p : points) {
    with.xs.push_back(p.x);
    with.ys.push_back(p.with_sleds.mean);
    without.xs.push_back(p.x);
    without.ys.push_back(p.without_sleds.mean);
  }
  PlotOptions options;
  options.title = title;
  options.x_label = "File size (MB)";
  options.y_label = y_label;
  std::fputs(RenderPlot({without, with}, options).c_str(), stdout);
}

}  // namespace

void PrintFigure(const std::string& figure_id, const std::string& title,
                 const std::string& y_label, const std::vector<SeriesPoint>& points) {
  std::printf("\n==== %s: %s ====\n", figure_id.c_str(), title.c_str());
  std::fputs(FormatSeries(title, "File size (MB)", y_label, points).c_str(), stdout);
  PrintPlot(title, y_label, points);
}

void PrintRatioFigure(const std::string& figure_id, const std::string& title,
                      const std::vector<SeriesPoint>& points) {
  std::printf("\n==== %s: %s ====\n", figure_id.c_str(), title.c_str());
  std::printf("%-16s %12s\n", "File size (MB)", "speedup");
  PlotSeries ratio{"without/with (speedup)", '*', {}, {}};
  for (const SeriesPoint& p : points) {
    std::printf("%-16.1f %12.2f\n", p.x, p.speedup());
    ratio.xs.push_back(p.x);
    ratio.ys.push_back(p.speedup());
  }
  PlotOptions options;
  options.title = title;
  options.x_label = "File size (MB)";
  options.y_label = "Improvement ratio";
  std::fputs(RenderPlot({ratio}, options).c_str(), stdout);
}

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    if (c == '\n' || c == '\t') {
      c = ' ';
    }
    out.push_back(c);
  }
  return out;
}

// One-line JSON object describing the binary and host that produced the
// numbers, so wall-clock figures across PRs are comparable (sim-time fields
// need no provenance — they are machine-independent).
const std::string& BuildMetadataJson() {
  static const std::string json = [] {
#ifdef SLEDS_GIT_SHA
    const char* sha = SLEDS_GIT_SHA;
#else
    const char* sha = "unknown";
#endif
#ifdef SLEDS_BUILD_TYPE
    const char* build_type = SLEDS_BUILD_TYPE;
#else
    const char* build_type = "unknown";
#endif
#ifdef SLEDS_CXX_FLAGS
    const char* flags = SLEDS_CXX_FLAGS;
#else
    const char* flags = "unknown";
#endif
    std::string cpu = "unknown";
    if (std::FILE* f = std::fopen("/proc/cpuinfo", "r")) {
      char line[512];
      while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, "model name", 10) == 0) {
          if (const char* colon = std::strchr(line, ':')) {
            cpu = colon + 1;
            while (!cpu.empty() && (cpu.front() == ' ' || cpu.front() == '\t')) {
              cpu.erase(cpu.begin());
            }
            while (!cpu.empty() && (cpu.back() == '\n' || cpu.back() == '\r')) {
              cpu.pop_back();
            }
          }
          break;
        }
      }
      std::fclose(f);
    }
    std::string out = "{\"compiler\": \"";
    out += JsonEscape(__VERSION__);
    out += "\", \"build_type\": \"";
    out += JsonEscape(build_type);
    out += "\", \"flags\": \"";
    out += JsonEscape(flags);
    out += "\", \"cpu\": \"";
    out += JsonEscape(cpu);
    out += "\", \"git_sha\": \"";
    out += JsonEscape(sha);
    // Parallelism provenance: wall-clock numbers from a sharded run only
    // compare across hosts with the same effective parallelism, so stamp the
    // hardware-thread count and the resolved default shard count ($SLEDS_SHARDS
    // or hardware threads).
    out += "\", \"hardware_threads\": ";
    out += std::to_string(HardwareThreads());
    out += ", \"shards\": ";
    out += std::to_string(ResolveShardCount(0));
    out += "}";
    return out;
  }();
  return json;
}

// Splice the build block in as the first member of the top-level object.
std::string StampBuildMetadata(const std::string& metrics_json) {
  const size_t brace = metrics_json.find('{');
  if (brace == std::string::npos) {
    return metrics_json;
  }
  std::string stamped = metrics_json;
  stamped.insert(brace + 1, "\n  \"build\": " + BuildMetadataJson() + ",");
  return stamped;
}

}  // namespace

void PrintBenchMetrics(const std::string& bench_id, const std::string& metrics_json) {
  const std::string stamped = StampBuildMetadata(metrics_json);
  std::printf("\n==== BENCH_%s.json ====\n", bench_id.c_str());
  std::fputs(stamped.c_str(), stdout);
  if (!stamped.empty() && stamped.back() != '\n') {
    std::fputs("\n", stdout);
  }
  std::printf("==== END BENCH_%s.json ====\n", bench_id.c_str());
  if (const char* dir = std::getenv("SLEDS_BENCH_JSON_DIR")) {
    const std::string path = std::string(dir) + "/BENCH_" + bench_id + ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fputs(stamped.c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    }
  }
}

}  // namespace sled
